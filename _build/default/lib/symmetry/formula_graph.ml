module Lit = Colib_sat.Lit
module Clause = Colib_sat.Clause
module Pbc = Colib_sat.Pbc
module Formula = Colib_sat.Formula

type t = {
  cg : Cgraph.t;
  nvars : int;
}

(* Vertex layout: [0 .. 2*nvars-1] literal vertices (literal index), then
   clause vertices, then PB-constraint vertices, then coefficient vertices. *)

let build f =
  let nvars = Formula.num_vars f in
  let edges = ref [] in
  let colors = ref [] in     (* colors of extra vertices, reversed *)
  let next = ref (2 * nvars) in
  let add_vertex color =
    let v = !next in
    incr next;
    colors := color :: !colors;
    v
  in
  let add_edge u v = edges := (u, v) :: !edges in
  (* colors: 0 = literal, 1 = clause, 2 = objective row,
     3+ = PB signatures and coefficient values *)
  let signature_color = Hashtbl.create 16 in
  let next_color = ref 3 in
  let color_of_signature key =
    match Hashtbl.find_opt signature_color key with
    | Some c -> c
    | None ->
      let c = !next_color in
      incr next_color;
      Hashtbl.add signature_color key c;
      c
  in
  (* Boolean consistency edges *)
  for v = 0 to nvars - 1 do
    add_edge (2 * v) ((2 * v) + 1)
  done;
  (* clauses *)
  Formula.iter_clauses
    (fun c ->
      let lits = Clause.lits c in
      if Array.length lits = 2 then
        add_edge (Lit.to_index lits.(0)) (Lit.to_index lits.(1))
      else begin
        let cv = add_vertex 1 in
        Array.iter (fun l -> add_edge cv (Lit.to_index l)) lits
      end)
    f;
  (* a PB row: constraint vertex colored by signature; uniform-coefficient
     rows attach literals directly, mixed rows go through coefficient
     vertices *)
  let add_pb_row ~row_color coefs lits =
    let rv = add_vertex row_color in
    let uniform =
      Array.length coefs = 0
      || Array.for_all (fun c -> c = coefs.(0)) coefs
    in
    if uniform then
      Array.iter (fun l -> add_edge rv (Lit.to_index l)) lits
    else begin
      (* one intermediate vertex per distinct coefficient value of this row *)
      let coef_vertex = Hashtbl.create 8 in
      Array.iteri
        (fun i l ->
          let c = coefs.(i) in
          let cv =
            match Hashtbl.find_opt coef_vertex c with
            | Some cv -> cv
            | None ->
              let cv = add_vertex (color_of_signature (`Coef c)) in
              Hashtbl.add coef_vertex c cv;
              add_edge rv cv;
              cv
          in
          add_edge cv (Lit.to_index l))
        lits
    end
  in
  Formula.iter_pbs
    (fun pb ->
      let sorted = Array.copy pb.Pbc.coefs in
      Array.sort Int.compare sorted;
      let row_color =
        color_of_signature (`Pb (pb.Pbc.bound, Array.to_list sorted))
      in
      add_pb_row ~row_color pb.Pbc.coefs pb.Pbc.lits)
    f;
  (match Formula.objective f with
  | None -> ()
  | Some terms ->
    let coefs = Array.of_list (List.map fst terms) in
    let lits = Array.of_list (List.map snd terms) in
    add_pb_row ~row_color:2 coefs lits);
  let extra = Array.of_list (List.rev !colors) in
  let all_colors =
    Array.init !next (fun v -> if v < 2 * nvars then 0 else extra.(v - (2 * nvars)))
  in
  let cg = Cgraph.make ~n:!next ~colors:all_colors ~edges:!edges in
  { cg; nvars }

let graph t = t.cg
let lit_vertex _t l = Lit.to_index l

let perm_to_lit_perm t perm =
  let nlits = 2 * t.nvars in
  let a = Array.make nlits 0 in
  let ok = ref true in
  for l = 0 to nlits - 1 do
    let img = Perm.image perm l in
    if img >= nlits then ok := false else a.(l) <- img
  done;
  (* Boolean consistency: the image of a variable's pair must be a pair *)
  if !ok then
    for v = 0 to t.nvars - 1 do
      if a.(2 * v) lxor a.((2 * v) + 1) <> 1 then ok := false
    done;
  if !ok then Some (Perm.of_array a) else None

let detect ?node_budget f =
  let t = build f in
  let res = Auto.automorphisms ?node_budget t.cg in
  let lit_perms =
    List.filter_map (perm_to_lit_perm t) res.Auto.generators
  in
  (res, lit_perms)
