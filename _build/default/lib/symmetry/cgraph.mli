(** Vertex-colored undirected graphs — the input of the automorphism engine.

    Colors constrain automorphisms: a valid automorphism maps every vertex to
    a vertex of the same color. Adjacency is stored as sorted arrays for the
    fast neighbor iteration the refinement loop needs. *)

type t

val make : n:int -> colors:int array -> edges:(int * int) list -> t
(** [colors] has length [n]; color values are arbitrary non-negative ints.
    Self-loops and duplicate edges are rejected. *)

val n : t -> int
val color : t -> int -> int
val adj : t -> int -> int array
(** Sorted. Do not mutate. *)

val num_edges : t -> int
val mem_edge : t -> int -> int -> bool

val is_automorphism : t -> Perm.t -> bool
(** Full validation: colors and adjacency are preserved. *)
