lib/symmetry/cgraph.ml: Array Int List Perm
