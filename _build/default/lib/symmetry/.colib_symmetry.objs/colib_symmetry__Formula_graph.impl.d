lib/symmetry/formula_graph.ml: Array Auto Cgraph Colib_sat Hashtbl Int List Perm
