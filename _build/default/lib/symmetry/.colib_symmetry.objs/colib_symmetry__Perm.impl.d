lib/symmetry/perm.ml: Array Format List
