lib/symmetry/group.mli: Perm
