lib/symmetry/auto.mli: Cgraph Perm
