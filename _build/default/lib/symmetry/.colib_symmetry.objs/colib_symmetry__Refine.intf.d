lib/symmetry/refine.mli: Cgraph
