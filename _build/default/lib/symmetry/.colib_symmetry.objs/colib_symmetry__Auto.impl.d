lib/symmetry/auto.ml: Array Cgraph Float Group Int List Perm Printf Queue Refine
