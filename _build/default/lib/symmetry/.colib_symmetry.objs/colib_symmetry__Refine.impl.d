lib/symmetry/refine.ml: Array Cgraph Int List Queue
