lib/symmetry/perm.mli: Format
