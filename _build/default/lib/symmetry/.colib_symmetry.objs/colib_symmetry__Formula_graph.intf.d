lib/symmetry/formula_graph.mli: Auto Cgraph Colib_sat Perm
