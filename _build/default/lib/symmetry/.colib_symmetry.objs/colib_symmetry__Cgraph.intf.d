lib/symmetry/cgraph.mli: Perm
