lib/symmetry/group.ml: Array Int List Option Perm Queue
