lib/symmetry/lex_leader.ml: Colib_sat List Perm Printf
