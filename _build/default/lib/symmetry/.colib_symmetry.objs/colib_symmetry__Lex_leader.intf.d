lib/symmetry/lex_leader.mli: Colib_sat Perm
