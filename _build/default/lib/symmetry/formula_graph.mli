(** CNF + PB formula → colored graph, for symmetry detection.

    The construction of Aloul, Ramani, Markov & Sakallah (2003, 2004):

    - two literal vertices per variable, all sharing one color so that
      phase-shift symmetries remain detectable, joined by a Boolean
      consistency edge;
    - binary clauses become a single edge between their literal vertices
      (no clause vertex), like the consistency edges — the optimization that
      is sound unless the formula contains circular implication chains, which
      {!perm_to_lit_perm} guards against by validating Boolean consistency of
      every reported symmetry;
    - longer clauses get a clause vertex (one shared color) adjacent to their
      literals;
    - PB constraints get a constraint vertex colored by their (bound,
      coefficient multiset) signature; when coefficients within a constraint
      differ, literals are attached through per-coefficient-value
      intermediate vertices so that only coefficient-preserving permutations
      survive;
    - the objective function, when present, is treated as a PB row with a
      unique color of its own, so every symmetry fixes it. *)

type t

val build : Colib_sat.Formula.t -> t
val graph : t -> Cgraph.t

val lit_vertex : t -> Colib_sat.Lit.t -> int
(** The graph vertex of a literal (literal [l] of variable [v] is vertex
    [2v] or [2v+1]). *)

val perm_to_lit_perm : t -> Perm.t -> Perm.t option
(** Restrict a graph automorphism to the literal vertices, as a permutation
    over literal indices [0 .. 2*nvars-1]. Returns [None] when the
    automorphism violates Boolean consistency (maps some variable's literal
    pair to a non-pair — a spurious symmetry introduced by the binary-clause
    edge optimization) and must be discarded. *)

val detect :
  ?node_budget:int ->
  Colib_sat.Formula.t ->
  Auto.result * Perm.t list
(** Build the graph, run {!Auto.automorphisms} and return both the raw result
    and the consistency-validated literal permutations. *)
