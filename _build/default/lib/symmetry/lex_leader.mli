(** Instance-dependent symmetry-breaking predicates (lex-leader SBPs).

    The efficient, linear-size, tautology-free construction of Aloul,
    Sakallah & Markov (2003), applied per symmetry-group generator: for a
    permutation [pi] of the literals with support variables
    [v_1 < v_2 < ... < v_m], the predicate keeps only assignments with
    [(v_1, ..., v_m) <=_lex (pi v_1, ..., pi v_m)], encoded with a chain of
    fresh "prefix equal so far" variables — 3 clauses and 1 fresh variable
    per support variable. [depth] optionally truncates the chain after that
    many support variables per generator (the construction is linear, so the
    default is the full support). *)

val add_for_generator :
  ?depth:int -> Colib_sat.Formula.t -> Perm.t -> unit
(** [add_for_generator f pi] appends the lex-leader SBP clauses for the
    literal permutation [pi] (over literal indices [0 .. 2 * nvars - 1]) to
    [f]. [depth] defaults to the full support. Identity generators add
    nothing. *)

val add_all :
  ?depth:int -> Colib_sat.Formula.t -> Perm.t list -> int
(** Add SBPs for every generator; returns the number of clauses added. *)
