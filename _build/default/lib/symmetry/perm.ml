type t = int array

let identity n = Array.init n (fun i -> i)

let of_array a =
  let n = Array.length a in
  let seen = Array.make n false in
  Array.iter
    (fun x ->
      if x < 0 || x >= n || seen.(x) then
        invalid_arg "Perm.of_array: not a permutation";
      seen.(x) <- true)
    a;
  Array.copy a

let of_cycles n cycles =
  let a = Array.init n (fun i -> i) in
  List.iter
    (fun cycle ->
      match cycle with
      | [] | [ _ ] -> ()
      | first :: _ ->
        let rec go = function
          | [ last ] ->
            if a.(last) <> last then invalid_arg "Perm.of_cycles: overlap";
            a.(last) <- first
          | x :: (y :: _ as rest) ->
            if a.(x) <> x then invalid_arg "Perm.of_cycles: overlap";
            a.(x) <- y;
            go rest
          | [] -> ()
        in
        go cycle)
    cycles;
  of_array a

let degree = Array.length
let image p x = p.(x)
let apply = image
let compose a b = Array.init (Array.length a) (fun x -> a.(b.(x)))

let inverse p =
  let inv = Array.make (Array.length p) 0 in
  Array.iteri (fun i x -> inv.(x) <- i) p;
  inv

let is_identity p =
  let rec go i = i >= Array.length p || (p.(i) = i && go (i + 1)) in
  go 0

let equal a b = a = b

let support p =
  let acc = ref [] in
  for i = Array.length p - 1 downto 0 do
    if p.(i) <> i then acc := i :: !acc
  done;
  !acc

let support_size p =
  let c = ref 0 in
  Array.iteri (fun i x -> if i <> x then incr c) p;
  !c

let cycles p =
  let n = Array.length p in
  let seen = Array.make n false in
  let acc = ref [] in
  for i = 0 to n - 1 do
    if (not seen.(i)) && p.(i) <> i then begin
      let cycle = ref [] in
      let j = ref i in
      while not seen.(!j) do
        seen.(!j) <- true;
        cycle := !j :: !cycle;
        j := p.(!j)
      done;
      acc := List.rev !cycle :: !acc
    end
  done;
  List.rev !acc

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let lcm a b = a / gcd a b * b

let order_of_perm p =
  List.fold_left (fun acc c -> lcm acc (List.length c)) 1 (cycles p)

let pp ppf p =
  match cycles p with
  | [] -> Format.fprintf ppf "()"
  | cs ->
    List.iter
      (fun c ->
        Format.fprintf ppf "(%a)"
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
             Format.pp_print_int)
          c)
      cs
