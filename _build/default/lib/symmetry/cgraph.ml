type t = {
  size : int;
  colors : int array;
  adjacency : int array array;
  m : int;
}

let make ~n ~colors ~edges =
  if Array.length colors <> n then invalid_arg "Cgraph.make: colors length";
  let deg = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      if u = v then invalid_arg "Cgraph.make: self-loop";
      if u < 0 || v < 0 || u >= n || v >= n then
        invalid_arg "Cgraph.make: vertex out of range";
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let adjacency = Array.init n (fun v -> Array.make deg.(v) 0) in
  let fill = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      adjacency.(u).(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1;
      adjacency.(v).(fill.(v)) <- u;
      fill.(v) <- fill.(v) + 1)
    edges;
  Array.iter (fun a -> Array.sort Int.compare a) adjacency;
  Array.iter
    (fun a ->
      for i = 1 to Array.length a - 1 do
        if a.(i) = a.(i - 1) then invalid_arg "Cgraph.make: duplicate edge"
      done)
    adjacency;
  { size = n; colors; adjacency; m = List.length edges }

let n g = g.size
let color g v = g.colors.(v)
let adj g v = g.adjacency.(v)
let num_edges g = g.m

let mem_edge g u v =
  let a = g.adjacency.(u) in
  let rec bsearch lo hi =
    if lo >= hi then false
    else begin
      let mid = (lo + hi) / 2 in
      if a.(mid) = v then true
      else if a.(mid) < v then bsearch (mid + 1) hi
      else bsearch lo mid
    end
  in
  bsearch 0 (Array.length a)

let is_automorphism g p =
  Perm.degree p = g.size
  && (let ok = ref true in
      for v = 0 to g.size - 1 do
        if g.colors.(Perm.image p v) <> g.colors.(v) then ok := false
      done;
      !ok)
  &&
  let scratch = ref true in
  (try
     for v = 0 to g.size - 1 do
       let pv = Perm.image p v in
       let av = g.adjacency.(v) in
       if Array.length av <> Array.length g.adjacency.(pv) then raise Exit;
       let mapped = Array.map (Perm.image p) av in
       Array.sort Int.compare mapped;
       if mapped <> g.adjacency.(pv) then raise Exit
     done
   with Exit -> scratch := false);
  !scratch
