(** Graph automorphism detection by individualization-refinement.

    The generator-oriented search of Saucy (Darga et al. 2004), simplified:
    descend the leftmost path of the refinement tree to a first leaf; then,
    at each node of that path, try the other members of the target cell
    (pruned by the orbits of the already-found generators that stabilize the
    earlier base points) and search their subtrees for a leaf whose labeling,
    composed with the first leaf's, is an automorphism. Every returned
    permutation is validated against the graph before being reported.

    The group order is the product of the base-point orbit sizes along the
    stabilizer chain (orbit-stabilizer theorem); it is exact when the node
    budget was not exhausted. *)

type result = {
  generators : Perm.t list;
  order_log10 : float;  (** log10 of the automorphism group order *)
  base : int list;      (** individualized vertices along the first path *)
  nodes : int;          (** search tree nodes explored *)
  complete : bool;      (** false when the node budget was exhausted *)
}

val automorphisms : ?node_budget:int -> Cgraph.t -> result
(** [node_budget] defaults to 200_000 tree nodes. *)

val order_string : float -> string
(** Render a log10 group order like the paper's tables: ["5.0e+149"]. *)
