(** Permutation groups given by generators: orbits and group order.

    The deterministic Schreier–Sims implementation here is intended for
    groups of small degree (validation, tests, and per-instance statistics on
    the original graphs); the automorphism search in {!Auto} computes the
    order of large formula-graph groups itself from its base-and-orbit
    structure. *)

val orbit : int -> Perm.t list -> int -> int list
(** [orbit degree gens x] is the orbit of [x], ascending. *)

val orbits : int -> Perm.t list -> int list list
(** All orbits (including singletons), each ascending, sorted by minimum. *)

val order : int -> Perm.t list -> float
(** Order of the generated group, as a float (group orders in the paper reach
    1e168, far beyond 63-bit integers). Deterministic Schreier–Sims; suitable
    for degree up to a few thousand. *)

val order_log10 : int -> Perm.t list -> float
(** log10 of the group order, computed without overflow. *)

val mem : int -> Perm.t list -> Perm.t -> bool
(** Membership test for the generated group (by sifting). *)
