type t = {
  elems : int array;  (* vertex sequence; cells are contiguous runs *)
  pos : int array;    (* vertex -> index in elems *)
  cell : int array;   (* vertex -> start index of its cell *)
  len : int array;    (* start index -> length (meaningful at starts only) *)
  mutable ncells : int;
}

let size p = Array.length p.elems
let num_cells p = p.ncells
let is_discrete p = p.ncells = Array.length p.elems

let copy p =
  {
    elems = Array.copy p.elems;
    pos = Array.copy p.pos;
    cell = Array.copy p.cell;
    len = Array.copy p.len;
    ncells = p.ncells;
  }

let cell_starts p =
  let n = Array.length p.elems in
  let rec go i acc = if i >= n then List.rev acc else go (i + p.len.(i)) (i :: acc) in
  go 0 []

let cell_contents p start =
  List.init p.len.(start) (fun i -> p.elems.(start + i))

let first_non_singleton p =
  let n = Array.length p.elems in
  let rec go i =
    if i >= n then -1 else if p.len.(i) > 1 then i else go (i + p.len.(i))
  in
  go 0

let elements p = p.elems
let cell_of_vertex p v = p.cell.(v)

let swap_elems p i j =
  let a = p.elems.(i) and b = p.elems.(j) in
  p.elems.(i) <- b;
  p.elems.(j) <- a;
  p.pos.(b) <- i;
  p.pos.(a) <- j

let individualize p v =
  let c = p.cell.(v) in
  let l = p.len.(c) in
  if l <= 1 then invalid_arg "Refine.individualize: singleton cell";
  swap_elems p c p.pos.(v);
  p.len.(c) <- 1;
  p.len.(c + 1) <- l - 1;
  for i = c + 1 to c + l - 1 do
    p.cell.(p.elems.(i)) <- c + 1
  done;
  p.ncells <- p.ncells + 1

(* Split every affected cell by neighbor counts toward the splitter cell,
   propagating until the partition is equitable. Fragment order within a
   split is by ascending count, which keeps the procedure
   isomorphism-invariant. *)
let refine_loop g p queue in_queue =
  let n = Array.length p.elems in
  let cnt = Array.make n 0 in
  let touched = ref [] in
  let affected = ref [] in
  let cell_marked = Array.make n false in
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    in_queue.(s) <- false;
    (* count adjacencies into the splitter cell *)
    for i = s to s + p.len.(s) - 1 do
      let v = p.elems.(i) in
      Array.iter
        (fun w ->
          if cnt.(w) = 0 then touched := w :: !touched;
          cnt.(w) <- cnt.(w) + 1)
        (Cgraph.adj g v)
    done;
    List.iter
      (fun w ->
        let c = p.cell.(w) in
        if (not cell_marked.(c)) && p.len.(c) > 1 then begin
          cell_marked.(c) <- true;
          affected := c :: !affected
        end)
      !touched;
    (* process affected cells in ascending start order so the procedure is
       deterministic and isomorphism-invariant *)
    let affected_sorted = List.sort Int.compare !affected in
    List.iter
      (fun c ->
        cell_marked.(c) <- false;
        let l = p.len.(c) in
        (* sort the cell contents by count, ascending *)
        let seg = Array.sub p.elems c l in
        Array.sort (fun a b -> Int.compare cnt.(a) cnt.(b)) seg;
        let all_equal = cnt.(seg.(0)) = cnt.(seg.(l - 1)) in
        if not all_equal then begin
          Array.iteri
            (fun i v ->
              p.elems.(c + i) <- v;
              p.pos.(v) <- c + i)
            seg;
          (* walk fragments *)
          let frag_starts = ref [] in
          let start = ref c in
          for i = 1 to l - 1 do
            if cnt.(seg.(i)) <> cnt.(seg.(i - 1)) then begin
              p.len.(!start) <- c + i - !start;
              frag_starts := !start :: !frag_starts;
              start := c + i;
              p.ncells <- p.ncells + 1
            end
          done;
          p.len.(!start) <- c + l - !start;
          frag_starts := !start :: !frag_starts;
          let frags = List.rev !frag_starts in
          List.iter
            (fun f ->
              for i = f to f + p.len.(f) - 1 do
                p.cell.(p.elems.(i)) <- f
              done)
            frags;
          (* enqueue fragments: if the original cell was pending, all
             fragments must be processed; otherwise all but a largest one *)
          if in_queue.(c) then
            List.iter
              (fun f ->
                if not in_queue.(f) then begin
                  in_queue.(f) <- true;
                  Queue.push f queue
                end)
              frags
          else begin
            let largest =
              List.fold_left
                (fun best f -> if p.len.(f) > p.len.(best) then f else best)
                (List.hd frags) frags
            in
            List.iter
              (fun f ->
                if f <> largest && not in_queue.(f) then begin
                  in_queue.(f) <- true;
                  Queue.push f queue
                end)
              frags
          end
        end)
      affected_sorted;
    affected := [];
    List.iter (fun w -> cnt.(w) <- 0) !touched;
    touched := []
  done

let refine g p =
  let queue = Queue.create () in
  let in_queue = Array.make (Array.length p.elems) false in
  List.iter
    (fun s ->
      in_queue.(s) <- true;
      Queue.push s queue)
    (cell_starts p);
  refine_loop g p queue in_queue

let refine_after g p start =
  let queue = Queue.create () in
  let in_queue = Array.make (Array.length p.elems) false in
  in_queue.(start) <- true;
  Queue.push start queue;
  refine_loop g p queue in_queue

let initial g =
  let n = Cgraph.n g in
  let elems = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = Int.compare (Cgraph.color g a) (Cgraph.color g b) in
      if c <> 0 then c else Int.compare a b)
    elems;
  let pos = Array.make n 0 in
  Array.iteri (fun i v -> pos.(v) <- i) elems;
  let cell = Array.make n 0 in
  let len = Array.make n 0 in
  let ncells = ref 0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while
      !j < n && Cgraph.color g elems.(!j) = Cgraph.color g elems.(!i)
    do
      incr j
    done;
    for k = !i to !j - 1 do
      cell.(elems.(k)) <- !i
    done;
    len.(!i) <- !j - !i;
    incr ncells;
    i := !j
  done;
  let p = { elems; pos; cell; len; ncells = !ncells } in
  if n > 0 then refine g p;
  p
