module Lit = Colib_sat.Lit
module Formula = Colib_sat.Formula

let add_for_generator ?(depth = max_int) f pi =
  let nvars = Formula.num_vars f in
  if 2 * nvars < Perm.degree pi then
    invalid_arg "Lex_leader: permutation degree exceeds formula variables";
  (* support variables, in index order *)
  let support = ref [] in
  for v = Perm.degree pi / 2 - 1 downto 0 do
    if Perm.image pi (2 * v) <> 2 * v then support := v :: !support
  done;
  let support =
    if depth >= List.length !support then !support
    else List.filteri (fun i _ -> i < depth) !support
  in
  (* chain: g_0 = true implicit; for each support var v_j with image literal
     p_j = pi(pos v_j):
       ordering:  g_{j-1} -> (v_j <= p_j)        i.e. (~g_{j-1} | ~v_j | p_j)
       chain:     g_{j-1} & v_j -> g_j           i.e. (~g_{j-1} | ~v_j | g_j)
                  g_{j-1} & ~p_j -> g_j          i.e. (~g_{j-1} | p_j | g_j)
     The chain direction alone is sufficient for soundness: the lex-leader
     of every orbit satisfies the predicate with the chain variables set
     truthfully. *)
  let g_prev = ref None in
  let total = List.length support in
  List.iteri
    (fun j v ->
      let vj = Lit.pos v in
      let pj = Lit.of_index (Perm.image pi (Lit.to_index vj)) in
      let prefix = match !g_prev with None -> [] | Some g -> [ Lit.neg g ] in
      Formula.add_clause f (prefix @ [ Lit.negate vj; pj ]);
      if j < total - 1 then begin
        let gj = Formula.fresh_var ~name:(Printf.sprintf "sbp_eq%d" j) f in
        Formula.add_clause f (prefix @ [ Lit.negate vj; Lit.pos gj ]);
        Formula.add_clause f (prefix @ [ pj; Lit.pos gj ]);
        g_prev := Some gj
      end)
    support

let add_all ?depth f perms =
  let before = Formula.num_clauses f in
  List.iter (fun pi -> add_for_generator ?depth f pi) perms;
  Formula.num_clauses f - before
