type result = {
  generators : Perm.t list;
  order_log10 : float;
  base : int list;
  nodes : int;
  complete : bool;
}

exception Budget

let in_orbit degree gens src dst =
  if src = dst then true
  else begin
    let seen = Array.make degree false in
    seen.(src) <- true;
    let queue = Queue.create () in
    Queue.push src queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let y = Queue.pop queue in
      List.iter
        (fun g ->
          let z = Perm.image g y in
          if z = dst then found := true
          else if not seen.(z) then begin
            seen.(z) <- true;
            Queue.push z queue
          end)
        gens
    done;
    !found
  end

let orbit_size degree gens x =
  List.length (Group.orbit degree gens x)

let automorphisms ?(node_budget = 200_000) g =
  let n = Cgraph.n g in
  if n = 0 then
    { generators = []; order_log10 = 0.0; base = []; nodes = 0; complete = true }
  else begin
    let nodes = ref 0 in
    let tick () =
      incr nodes;
      if !nodes > node_budget then raise Budget
    in
    let root = Refine.initial g in
    (* Phase 1: leftmost path. Record at each depth the partition before
       individualization and the target cell. *)
    let path = ref [] in
    let p = ref root in
    let continue_descend = ref true in
    while !continue_descend do
      let t = Refine.first_non_singleton !p in
      if t < 0 then continue_descend := false
      else begin
        let before = Refine.copy !p in
        (* individualize the smallest vertex of the target cell, so the
           phase-2 chains run monotonically from it *)
        let v =
          List.fold_left min max_int (Refine.cell_contents !p t)
        in
        path := (before, t, v) :: !path;
        Refine.individualize !p v;
        Refine.refine_after g !p t
      end
    done;
    let first_leaf = Array.copy (Refine.elements !p) in
    let path = Array.of_list (List.rev !path) in
    let base = Array.map (fun (_, _, v) -> v) path in
    let depth = Array.length path in
    let generators = ref [] in
    (* The reference leaf candidates are compared against. Starting from the
       first leaf and advancing it to each successful candidate's leaf makes
       the reported generators adjacent transpositions along each orbit
       (v1 v2), (v2 v3), ... — the same group, but far stronger lex-leader
       predicates than the star (v1 v2), (v1 v3), ... *)
    let ref_leaf = ref first_leaf in
    let perm_of_leaf leaf_elems =
      let a = Array.make n 0 in
      Array.iteri (fun i v -> a.(v) <- leaf_elems.(i)) !ref_leaf;
      a
    in
    (* Complete DFS of a subtree, looking for any leaf whose induced mapping
       is an automorphism. *)
    let rec subtree part =
      tick ();
      let t = Refine.first_non_singleton part in
      if t < 0 then begin
        let cand = perm_of_leaf (Refine.elements part) in
        let perm = Perm.of_array cand in
        if Cgraph.is_automorphism g perm then Some perm else None
      end
      else begin
        let members = Refine.cell_contents part t in
        let rec try_members = function
          | [] -> None
          | v :: rest -> (
            let child = Refine.copy part in
            Refine.individualize child v;
            Refine.refine_after g child t;
            match subtree child with
            | Some _ as found -> found
            | None -> try_members rest)
        in
        try_members members
      end
    in
    let complete = ref true in
    (* Phase 2: deepest level first, so that generators found at deeper
       levels (which fix more base points) are available for pruning. *)
    (try
       for d = depth - 1 downto 0 do
         let part_d, t, first_v = path.(d) in
         let stab_gens =
           List.filter
             (fun gen ->
               let rec fixes j =
                 j >= d || (Perm.image gen base.(j) = base.(j) && fixes (j + 1))
               in
               fixes 0)
             !generators
         in
         let stab = ref stab_gens in
         ref_leaf := first_leaf;
         (* candidates ascending by vertex id, each compared against the
            previous successful candidate's leaf (see ref_leaf above) *)
         List.iter
           (fun v ->
             if v <> first_v && not (in_orbit n !stab first_v v) then begin
               let child = Refine.copy part_d in
               Refine.individualize child v;
               Refine.refine_after g child t;
               match subtree child with
               | Some perm ->
                 ref_leaf := Array.map (Perm.image perm) !ref_leaf;
                 generators := perm :: !generators;
                 stab := perm :: !stab
               | None -> ()
             end)
           (List.sort Int.compare (Refine.cell_contents part_d t))
       done
     with Budget -> complete := false);
    (* group order from the stabilizer chain (orbit-stabilizer) *)
    let order_log10 = ref 0.0 in
    for d = 0 to depth - 1 do
      let stab_gens =
        List.filter
          (fun gen ->
            let rec fixes j =
              j >= d || (Perm.image gen base.(j) = base.(j) && fixes (j + 1))
            in
            fixes 0)
          !generators
      in
      order_log10 :=
        !order_log10 +. log10 (float_of_int (orbit_size n stab_gens base.(d)))
    done;
    {
      generators = !generators;
      order_log10 = !order_log10;
      base = Array.to_list base;
      nodes = !nodes;
      complete = !complete;
    }
  end

let order_string log10_order =
  if log10_order < 0.0001 then "1"
  else begin
    let e = int_of_float (Float.round (log10_order *. 1e6)) / 1000000 in
    let frac = log10_order -. float_of_int e in
    let mantissa = 10.0 ** frac in
    (* normalize in case of rounding artifacts *)
    let mantissa, e =
      if mantissa >= 10.0 then (mantissa /. 10.0, e + 1) else (mantissa, e)
    in
    if e < 7 then
      let v = mantissa *. (10.0 ** float_of_int e) in
      Printf.sprintf "%.0f" v
    else Printf.sprintf "%.1fe+%d" mantissa e
  end
