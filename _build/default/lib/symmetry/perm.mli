(** Permutations of [0 .. n-1], represented by their image arrays. *)

type t = private int array

val identity : int -> t
val of_array : int array -> t
(** Validates that the argument is a permutation. Raises [Invalid_argument]
    otherwise. The array is copied. *)

val of_cycles : int -> (int list) list -> t
(** [of_cycles n cycles] builds a permutation of degree [n] from disjoint
    cycles, e.g. [of_cycles 4 [[0;1];[2;3]]]. *)

val degree : t -> int
val image : t -> int -> int
val apply : t -> int -> int
(** Synonym of {!image}. *)

val compose : t -> t -> t
(** [compose a b] maps [x] to [a (b x)] (apply [b] first). *)

val inverse : t -> t
val is_identity : t -> bool
val equal : t -> t -> bool

val support : t -> int list
(** Points moved by the permutation, ascending. *)

val support_size : t -> int

val cycles : t -> int list list
(** Non-trivial cycles, each starting at its smallest element, sorted by that
    element. *)

val order_of_perm : t -> int
(** The order of the permutation (lcm of cycle lengths). *)

val pp : Format.formatter -> t -> unit
(** Cycle notation. *)
