module Graph = Colib_graph.Graph
module Formula = Colib_sat.Formula
module Lit = Colib_sat.Lit

type t = {
  graph : Graph.t;
  k : int;
  formula : Formula.t;
  x : int array array;
  y : int array;
}

let encode ?(y_first = true) g ~k =
  if k <= 0 then invalid_arg "Encoding.encode: k must be positive";
  let n = Graph.num_vertices g in
  let f = Formula.create () in
  (* y variables get the smallest indices by default: the lex-leader SBPs of
     the instance-dependent flow order variables by index, and chains that
     look at color-usage variables first propagate much more strongly.
     [y_first:false] reproduces the naive numbering for the ablation bench. *)
  let fresh_y () =
    Array.init k (fun j -> Formula.fresh_var ~name:(Printf.sprintf "y%d" j) f)
  in
  let fresh_x () =
    Array.init n (fun v ->
        Array.init k (fun j ->
            Formula.fresh_var ~name:(Printf.sprintf "x%d_%d" v j) f))
  in
  let x, y =
    if y_first then begin
      let y = fresh_y () in
      let x = fresh_x () in
      (x, y)
    end
    else begin
      let x = fresh_x () in
      let y = fresh_y () in
      (x, y)
    end
  in
  (* each vertex gets exactly one color *)
  Array.iter
    (fun row ->
      Formula.add_exactly_one f (Array.to_list (Array.map Lit.pos row)))
    x;
  (* adjacent vertices differ in every color *)
  Graph.iter_edges
    (fun a b ->
      for j = 0 to k - 1 do
        Formula.add_clause f [ Lit.neg x.(a).(j); Lit.neg x.(b).(j) ]
      done)
    g;
  (* y_j <=> OR_i x_{i,j} *)
  for j = 0 to k - 1 do
    for v = 0 to n - 1 do
      Formula.add_clause f [ Lit.neg x.(v).(j); Lit.pos y.(j) ]
    done;
    Formula.add_clause f
      (Lit.neg y.(j) :: List.init n (fun v -> Lit.pos x.(v).(j)))
  done;
  Formula.set_objective_min f
    (List.init k (fun j -> (1, Lit.pos y.(j))));
  { graph = g; k; formula = f; x; y }

let decode t model =
  Array.map
    (fun row ->
      let rec find j =
        if j >= t.k then
          invalid_arg "Encoding.decode: vertex without color"
        else if model.(row.(j)) then j
        else find (j + 1)
      in
      find 0)
    t.x

let coloring_cost t model =
  Array.fold_left (fun acc yv -> if model.(yv) then acc + 1 else acc) 0 t.y

let verify t model =
  let coloring = decode t model in
  Graph.is_proper_coloring t.graph coloring
  && Graph.count_colors coloring <= coloring_cost t model
