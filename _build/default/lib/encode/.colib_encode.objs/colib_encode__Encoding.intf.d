lib/encode/encoding.mli: Colib_graph Colib_sat
