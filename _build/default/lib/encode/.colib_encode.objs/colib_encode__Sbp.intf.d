lib/encode/sbp.mli: Encoding
