lib/encode/encoding.ml: Array Colib_graph Colib_sat List Printf
