lib/encode/sbp.ml: Array Colib_graph Colib_sat Encoding List Printf String
