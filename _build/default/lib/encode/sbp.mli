(** Instance-independent symmetry-breaking predicates (Section 3).

    Four constructions of increasing strength against the color-permutation
    symmetry present in every K-coloring reduction, plus the NU+SC
    combination studied in the paper's tables:

    - {b NU} (null-color elimination): unused colors may only trail used
      ones — [y_{k+1} => y_k], K-1 binary clauses.
    - {b CA} (cardinality-based color ordering): independent-set sizes are
      non-increasing in the color index —
      [sum_i x_{i,k} >= sum_i x_{i,k+1}], K-1 PB rows. Subsumes NU.
    - {b LI} (lowest-index color ordering): the smallest vertex index using
      color k is increasing in k; complete — no color symmetry survives, and
      vertex symmetries are destroyed too. Encoded as in the paper, with
      lowest-index marker variables [V_{i,k}] ("vertex i is the
      lowest-index vertex colored k"): [n*K] fresh variables and a
      quadratic number of clauses (the [V_{i,k} => ~x_{j,k}, j < i]
      expansion), which is what makes LI the largest and — per the paper's
      experiments — the worst-performing construction despite being the
      strongest symmetry breaker.
    - {b SC} (selective coloring): a cheap heuristic — pin the
      highest-degree vertex to color 0 and its highest-degree neighbor to
      color 1; two unit clauses.

    {b Li_prefix} is this reproduction's extension: the same lowest-index
    ordering expressed through monotone prefix variables
    [P_{i,k} = "some vertex <= i uses color k"] — identical semantics and
    completeness, but only O(nK) clauses. It inverts the paper's LI verdict
    (see the ablation bench), showing the construction lost to its encoding
    size, not to completeness itself. *)

type construction = No_sbp | Nu | Ca | Li | Sc | Nu_sc | Li_prefix

val all : construction list
(** In the paper's table order: no SBPs, NU, CA, LI, SC, NU+SC.
    [Li_prefix] is not part of the paper's matrix and is exercised by the
    ablation bench instead. *)

val name : construction -> string
val of_name : string -> construction
(** Accepts the table names, case-insensitively: "none", "nu", "ca", "li",
    "sc", "nu+sc". Raises [Invalid_argument] otherwise. *)

val add : construction -> Encoding.t -> unit
(** Append the construction's predicates to the encoding's formula. *)

val add_region_ordering : Encoding.t -> offsets:int array -> unit
(** The application-specific extension sketched at the end of Section 3: in
    the radio-frequency-assignment reduction, the vertices inside one
    region's demand clique are interchangeable — an instance-independent
    symmetry introduced by the reduction itself, not by colors. Given the
    region [offsets] (region [r] owns vertices [offsets.(r) ..
    offsets.(r+1) - 1], as built by
    {!Colib_graph.Generators.frequency_assignment}), this orders the colors
    within every region clique: consecutive clique vertices must receive
    increasing color indices. One PB row per consecutive vertex pair. *)
