(** Graph coloring → 0-1 ILP (Section 2.5 of the paper).

    For the K-coloring of [G(V, E)] with [n = |V|], [m = |E|]:

    - indicator variables [x_{i,j}] ("vertex i has color j") — [n * K] of
      them;
    - color-usage variables [y_j] ("some vertex uses color j") — [K];
    - one PB constraint per vertex: [sum_j x_{i,j} = 1];
    - per edge and color, the CNF clause [(~x_{a,j} | ~x_{b,j})];
    - [y_j <=> OR_i x_{i,j}] as [n*K] binary clauses [x_{i,j} => y_j] plus
      [K] long clauses [y_j => OR_i x_{i,j}];
    - objective [MIN sum_j y_j].

    Totals: [nK + K] variables, [K(m + n + 1)] CNF clauses, [n] PB equality
    constraints (each equality splits into a [>= 1] clause and a normalized
    at-most-one PB row when loaded). *)

type t = {
  graph : Colib_graph.Graph.t;
  k : int;
  formula : Colib_sat.Formula.t;
  x : int array array;  (** [x.(v).(j)] is the variable for color j on v *)
  y : int array;        (** [y.(j)] is the usage variable of color j *)
}

val encode : ?y_first:bool -> Colib_graph.Graph.t -> k:int -> t
(** Build the 0-1 ILP instance. [k] must be positive. [y_first] (default
    true) numbers the color-usage variables before the indicator variables,
    which makes the index-ordered lex-leader SBPs of the instance-dependent
    flow dramatically stronger; pass [false] to reproduce naive numbering
    (ablation). *)

val decode : t -> bool array -> int array
(** Extract the coloring from a model: [coloring.(v)] is the color of [v].
    Raises [Invalid_argument] if some vertex has no color set (cannot happen
    for genuine models of the encoding). *)

val coloring_cost : t -> bool array -> int
(** Number of [y] variables true in the model. *)

val verify : t -> bool array -> bool
(** The model decodes to a proper coloring whose color count matches the
    number of set [y] variables at most. *)
