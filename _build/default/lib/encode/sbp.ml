module Graph = Colib_graph.Graph
module Formula = Colib_sat.Formula
module Lit = Colib_sat.Lit

type construction = No_sbp | Nu | Ca | Li | Sc | Nu_sc | Li_prefix

let all = [ No_sbp; Nu; Ca; Li; Sc; Nu_sc ]

let name = function
  | No_sbp -> "no SBPs"
  | Nu -> "NU"
  | Ca -> "CA"
  | Li -> "LI"
  | Sc -> "SC"
  | Nu_sc -> "NU+SC"
  | Li_prefix -> "LI-pfx"

let of_name s =
  match String.lowercase_ascii s with
  | "none" | "no" | "nosbp" | "no-sbp" | "no sbps" -> No_sbp
  | "nu" -> Nu
  | "ca" -> Ca
  | "li" -> Li
  | "sc" -> Sc
  | "nu+sc" | "nusc" | "nu-sc" -> Nu_sc
  | "li-pfx" | "li_prefix" | "lipfx" -> Li_prefix
  | _ -> invalid_arg (Printf.sprintf "Sbp.of_name: unknown construction %S" s)

let add_nu (e : Encoding.t) =
  for j = 0 to e.k - 2 do
    Formula.add_clause e.formula [ Lit.neg e.y.(j + 1); Lit.pos e.y.(j) ]
  done

let add_ca (e : Encoding.t) =
  let n = Graph.num_vertices e.graph in
  for j = 0 to e.k - 2 do
    let terms =
      List.concat
        (List.init n (fun v ->
             [ (1, Lit.pos e.x.(v).(j)); (-1, Lit.pos e.x.(v).(j + 1)) ]))
    in
    Formula.add_pb_ge e.formula terms 0
  done

(* The paper's LI construction: marker variables V_{i,k} for "vertex i is
   the lowest-index vertex colored k", with the pairwise definition clauses
   that make the construction quadratic in size. *)
let add_li (e : Encoding.t) =
  let n = Graph.num_vertices e.graph in
  if n > 0 then begin
    let f = e.formula in
    let v =
      Array.init n (fun i ->
          Array.init e.k (fun j ->
              Formula.fresh_var ~name:(Printf.sprintf "li_v%d_%d" i j) f))
    in
    for j = 0 to e.k - 1 do
      for i = 0 to n - 1 do
        (* V_{i,j} => x_{i,j} *)
        Formula.add_clause f [ Lit.neg v.(i).(j); Lit.pos e.x.(i).(j) ];
        (* V_{i,j} => ~x_{l,j} for every l < i: the quadratic expansion *)
        for l = 0 to i - 1 do
          Formula.add_clause f [ Lit.neg v.(i).(j); Lit.neg e.x.(l).(j) ]
        done;
        (* x_{i,j} & (no earlier vertex uses j) => V_{i,j} *)
        Formula.add_clause f
          (Lit.pos v.(i).(j) :: Lit.neg e.x.(i).(j)
          :: List.init i (fun l -> Lit.pos e.x.(l).(j)))
      done;
      (* a used color has a lowest-index vertex *)
      Formula.add_clause f
        (Lit.neg e.y.(j) :: List.init n (fun i -> Lit.pos v.(i).(j)))
    done;
    (* ordering: the lowest index of color j+1 exceeds that of color j *)
    for j = 1 to e.k - 1 do
      for i = 0 to n - 1 do
        Formula.add_clause f
          (Lit.neg v.(i).(j) :: List.init i (fun l -> Lit.pos v.(l).(j - 1)))
      done
    done
  end

let add_li_prefix (e : Encoding.t) =
  let n = Graph.num_vertices e.graph in
  if n > 0 then begin
    let f = e.formula in
    (* prefix variables: p.(v).(j) <=> some vertex <= v uses color j *)
    let p =
      Array.init n (fun v ->
          Array.init e.k (fun j ->
              Formula.fresh_var ~name:(Printf.sprintf "li_p%d_%d" v j) f))
    in
    for j = 0 to e.k - 1 do
      (* p_{0,j} <=> x_{0,j} *)
      Formula.add_clause f [ Lit.neg e.x.(0).(j); Lit.pos p.(0).(j) ];
      Formula.add_clause f [ Lit.neg p.(0).(j); Lit.pos e.x.(0).(j) ];
      for v = 1 to n - 1 do
        (* p_{v,j} <=> p_{v-1,j} | x_{v,j} *)
        Formula.add_clause f [ Lit.neg p.(v - 1).(j); Lit.pos p.(v).(j) ];
        Formula.add_clause f [ Lit.neg e.x.(v).(j); Lit.pos p.(v).(j) ];
        Formula.add_clause f
          [ Lit.neg p.(v).(j); Lit.pos p.(v - 1).(j); Lit.pos e.x.(v).(j) ]
      done
    done;
    (* ordering: if color j+1 appears among the first v vertices, color j
       does too — forces the lowest-index vertex of each color to be
       increasing in the color index, which breaks all color permutations *)
    for j = 0 to e.k - 2 do
      for v = 0 to n - 1 do
        Formula.add_clause f [ Lit.neg p.(v).(j + 1); Lit.pos p.(v).(j) ]
      done
    done
  end

let add_sc (e : Encoding.t) =
  let g = e.graph in
  let n = Graph.num_vertices g in
  if n > 0 then begin
    let vl = ref 0 in
    for v = 1 to n - 1 do
      if Graph.degree g v > Graph.degree g !vl then vl := v
    done;
    Formula.add_clause e.formula [ Lit.pos e.x.(!vl).(0) ];
    let neighbors = Graph.neighbors g !vl in
    if Array.length neighbors > 0 && e.k >= 2 then begin
      let vl' = ref neighbors.(0) in
      Array.iter
        (fun w -> if Graph.degree g w > Graph.degree g !vl' then vl' := w)
        neighbors;
      Formula.add_clause e.formula [ Lit.pos e.x.(!vl').(1) ]
    end
  end

let add c e =
  match c with
  | No_sbp -> ()
  | Nu -> add_nu e
  | Ca -> add_ca e
  | Li -> add_li e
  | Sc -> add_sc e
  | Nu_sc ->
    add_nu e;
    add_sc e
  | Li_prefix -> add_li_prefix e

let add_region_ordering (e : Encoding.t) ~offsets =
  let nregions = Array.length offsets - 1 in
  for r = 0 to nregions - 1 do
    for v = offsets.(r) to offsets.(r + 1) - 2 do
      (* color(v) < color(v+1), as the PB row
         sum_j j*x_{v+1,j} - sum_j j*x_{v,j} >= 1 *)
      let terms =
        List.concat
          (List.init e.Encoding.k (fun j ->
               [ (j, Lit.pos e.Encoding.x.(v + 1).(j));
                 (-j, Lit.pos e.Encoding.x.(v).(j)) ]))
      in
      Formula.add_pb_ge e.Encoding.formula terms 1
    done
  done
