(** Coloring heuristics: upper bounds for the chromatic number.

    The paper's per-instance bound procedure (Section 4.1) first applies a
    min-coloring heuristic to get a feasible upper bound. DSATUR (Brélaz
    1979) colors vertices in order of decreasing saturation degree; it is
    optimal on bipartite graphs. Welsh–Powell is the classic largest-first
    greedy. Both return proper colorings using colors [0 .. k-1]. *)

val dsatur : Graph.t -> int array
(** DSATUR coloring. *)

val welsh_powell : Graph.t -> int array
(** Largest-degree-first greedy coloring. *)

val greedy_in_order : Graph.t -> int array -> int array
(** [greedy_in_order g order] colors vertices greedily in the given vertex
    order (a permutation of [0 .. n-1]). *)

val smallest_last : Graph.t -> int array
(** Matula–Beck smallest-last (degeneracy) greedy coloring: repeatedly remove
    a minimum-degree vertex, then color in reverse removal order. Uses at
    most [degeneracy + 1] colors, hence optimal on graphs built with bounded
    backward degree (the register-allocation and book-graph models). *)

val num_colors : int array -> int
(** Number of colors used by a coloring ([max + 1]; 0 for empty). *)

val upper_bound : Graph.t -> int
(** The best (smallest) of the DSATUR and Welsh–Powell color counts. *)
