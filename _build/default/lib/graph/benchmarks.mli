(** The 20 DIMACS graph-coloring benchmarks of Table 1.

    [queen*] and [myciel*] instances are exact mathematical reconstructions.
    The remaining families are deterministic seeded structural models with the
    original vertex counts, edge counts and (for the models that can plant
    them) chromatic numbers — see DESIGN.md for the substitution rationale.
    Note on edge counts: Table 1 of the paper reports doubled edge counts for
    several families (both orientations); [paper_edges] reproduces the table's
    numbers verbatim, while the graphs themselves have the true (undirected)
    edge counts of the original DIMACS files. *)

type family =
  | Random          (** DSJ random graphs *)
  | Book            (** character-interaction graphs: anna, david, huck, jean *)
  | Mileage         (** miles distance graphs *)
  | Games           (** college football *)
  | Queens          (** n-queens *)
  | Register        (** register allocation: mulsol, zeroin *)
  | Mycielski       (** triangle-free Mycielski graphs *)

type t = {
  name : string;
  family : family;
  graph : Graph.t Lazy.t;
  paper_vertices : int;   (** #V as printed in Table 1 *)
  paper_edges : int;      (** #E as printed in Table 1 (sometimes doubled) *)
  paper_chromatic : int option;
      (** chromatic number from Table 1; [None] when the paper prints ">20" *)
}

val all : t list
(** The 20 instances, in Table 1 order. *)

val find : string -> t
(** Raises [Not_found] for unknown names. *)

val queens_family : t list
(** The four queens instances of the appendix (Table 5). *)

val family_name : family -> string
