(** Brute-force exact coloring for tiny graphs.

    Simple backtracking over vertex-color assignments, used as the test
    oracle that the reduction-based solvers are validated against. Do not use
    beyond roughly a dozen vertices. *)

val k_colorable : Graph.t -> int -> int array option
(** [k_colorable g k] is a proper coloring with at most [k] colors, or [None].
    Symmetry-trimmed backtracking (a vertex may only use a color at most one
    greater than the maximum color used before it). *)

val chromatic_number : Graph.t -> int
(** Smallest [k] such that [k_colorable g k] succeeds. *)
