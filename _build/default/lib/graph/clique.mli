(** Clique lower bounds for the chromatic number.

    The size of any clique is a lower bound on the chromatic number
    (Section 2.1 of the paper). [greedy] is fast and used by default in the
    solving flow; [max_clique] is an exact branch-and-bound usable on the
    medium-sized instances of the benchmark suite. *)

val greedy : Graph.t -> int array
(** A maximal (not maximum) clique, grown greedily from high-degree vertices.
    Returns the member vertices. *)

val max_clique : ?node_limit:int -> Graph.t -> int array
(** Exact maximum clique by branch and bound with greedy-coloring bounds.
    [node_limit] caps the search (default [10_000_000]); when the cap is hit
    the best clique found so far is returned, so the result is always a
    clique but only guaranteed maximum if the limit was not reached. *)

val is_clique : Graph.t -> int array -> bool
