(** Graph families and synthetic benchmark generators.

    Exact mathematical constructions ({!queens}, {!mycielski}, {!complete},
    {!cycle}, …) plus seeded structural models used to reconstruct the DIMACS
    benchmark instances that are not available in this sealed environment
    (see DESIGN.md, substitutions table). All randomized generators are
    deterministic in their [seed]. *)

(** {1 Exact constructions} *)

val complete : int -> Graph.t
val cycle : int -> Graph.t
val path : int -> Graph.t
val star : int -> Graph.t
(** [star n] has [n] vertices: vertex 0 joined to all others. *)

val complete_bipartite : int -> int -> Graph.t
val petersen : unit -> Graph.t

val wheel : int -> Graph.t
(** [wheel n]: a cycle on [n] rim vertices (labels [0 .. n-1]) plus a hub
    (label [n]) adjacent to all of them. Chromatic number 3 for even rim
    length, 4 for odd. Requires [n >= 3]. *)

val crown : int -> Graph.t
(** [crown n]: the complete bipartite graph K(n,n) minus a perfect matching —
    2n vertices, [n(n-1)] edges, automorphism group of order [2 * n!].
    Bipartite (chromatic number 2 for n >= 2), heavily symmetric: a stress
    case for symmetry detection. *)

val kneser : n:int -> k:int -> Graph.t
(** [kneser ~n ~k]: vertices are the k-subsets of [n]; edges join disjoint
    subsets. Chromatic number [n - 2k + 2] (Lovász 1978) when [n >= 2k].
    [kneser ~n:5 ~k:2] is the Petersen graph. *)

val queens : rows:int -> cols:int -> Graph.t
(** The n-queens graph: one vertex per board cell; two cells are adjacent iff
    a queen on one attacks the other (same row, column or diagonal). *)

val mycielski_of : Graph.t -> Graph.t
(** One application of the Mycielski transformation: from [G] with [n]
    vertices and [m] edges, a triangle-free-preserving graph with [2n + 1]
    vertices, [3m + n] edges and chromatic number [chi(G) + 1]. *)

val mycielski : int -> Graph.t
(** [mycielski k] is the DIMACS [mycielK] instance: the Mycielski
    transformation iterated from K2, so that [mycielski 3] is the 11-vertex
    Grötzsch graph with chromatic number 4, [mycielski 4] has 23 vertices and
    chromatic number 5, etc. Requires [k >= 2]; [mycielski 2] is the
    5-cycle. *)

(** {1 Random models} *)

val gnp : n:int -> p:float -> seed:int -> Graph.t
(** Erdős–Rényi G(n, p). *)

val gnm : n:int -> m:int -> seed:int -> Graph.t
(** Uniform random graph with exactly [m] edges. *)

val geometric : n:int -> m:int -> seed:int -> Graph.t
(** [n] points uniform in the unit square; the [m] shortest point pairs become
    edges (a unit-disk graph with the radius chosen to yield exactly [m]
    edges). Models the DIMACS [miles] distance graphs. *)

val planted_degenerate :
  n:int -> m:int -> clique:int -> seed:int -> Graph.t
(** A planted-clique, bounded-degeneracy model with chromatic number exactly
    [clique]: vertices [0 .. clique-1] form a complete subgraph; every later
    vertex chooses at most [clique - 1] earlier neighbors
    (preferential-attachment weighted), so the graph is
    [(clique-1)]-degenerate and hence [clique]-colorable, while the planted
    clique forces [chi >= clique]. Total edge count is exactly [m]. Models
    the book-graph and football-game DIMACS instances. Raises
    [Invalid_argument] when [m] is infeasible for the model. *)

val split_register : n:int -> m:int -> clique:int -> seed:int -> Graph.t
(** A model of register-allocation interference graphs with chromatic number
    exactly [clique]: a clique of that size, outside vertices attached to
    nested prefixes of a fixed clique order (quantized depths, so large
    groups of clique vertices stay mutually interchangeable — the
    instance-dependent symmetry real register graphs exhibit), and bounded
    backward interference among outside vertices keeping the graph
    [(clique-1)]-degenerate. Models the DIMACS [mulsol] / [zeroin]
    instances. *)

(** {1 Application reductions} *)

val frequency_assignment :
  demands:int array -> adjacent:(int * int) list -> Graph.t
(** The radio-frequency-assignment reduction of Section 2 of the paper: region
    [r] needing [demands.(r)] frequencies becomes a clique of that size, and
    all bipartite edges are added between the cliques of geographically
    adjacent regions. Returns the coloring graph; a proper coloring is a
    conflict-free frequency assignment. *)

val interval_conflicts : (int * int) list -> Graph.t
(** Interference graph of live ranges: one vertex per [(start, stop)] interval
    (half-open), edges between overlapping intervals. The core of
    register-allocation graph construction. *)
