(** Simple undirected graphs.

    Vertices are integers [0 .. n-1]. The structure is immutable once built:
    construct with a {!builder}, then {!freeze}. Adjacency is stored both as
    sorted arrays (for iteration) and as a hash-based edge set (for O(1)
    membership tests). Self-loops are rejected; duplicate edges are merged. *)

type t

(** {1 Construction} *)

type builder

val builder : int -> builder
(** [builder n] starts a graph on vertices [0 .. n-1]. *)

val add_edge : builder -> int -> int -> unit
(** Add the undirected edge [{u, v}]. Raises [Invalid_argument] on self-loops
    or out-of-range vertices. Duplicate additions are ignored. *)

val has_edge_b : builder -> int -> int -> bool
val freeze : builder -> t

val of_edges : int -> (int * int) list -> t
(** [of_edges n edges] builds the graph directly. *)

(** {1 Queries} *)

val num_vertices : t -> int
val num_edges : t -> int
val mem_edge : t -> int -> int -> bool
val neighbors : t -> int -> int array
(** Sorted array of neighbors. Do not mutate. *)

val degree : t -> int -> int
val max_degree : t -> int
val edges : t -> (int * int) list
(** All edges [(u, v)] with [u < v], lexicographically sorted. *)

val iter_edges : (int -> int -> unit) -> t -> unit
val fold_vertices : ('a -> int -> 'a) -> 'a -> t -> 'a

val density : t -> float
(** [2m / (n (n - 1))]; 0 for graphs with fewer than two vertices. *)

val complement : t -> t
val induced : t -> int array -> t
(** [induced g vs] is the subgraph induced by the vertex set [vs] (which must
    have no duplicates), with vertices renumbered [0 .. length vs - 1] in the
    order given. *)

val is_proper_coloring : t -> int array -> bool
(** [is_proper_coloring g coloring] checks that adjacent vertices have
    different colors. [coloring] must have length [num_vertices g]. *)

val count_colors : int array -> int
(** Number of distinct values in a coloring array. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
