lib/graph/brute.mli: Graph
