lib/graph/exact_dsatur.mli: Graph
