lib/graph/clique.ml: Array Graph Hashtbl Int List
