lib/graph/benchmarks.mli: Graph Lazy
