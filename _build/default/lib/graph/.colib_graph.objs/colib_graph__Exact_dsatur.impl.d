lib/graph/exact_dsatur.ml: Array Clique Dsatur Graph Unix
