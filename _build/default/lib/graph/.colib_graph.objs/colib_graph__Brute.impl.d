lib/graph/brute.ml: Array Graph
