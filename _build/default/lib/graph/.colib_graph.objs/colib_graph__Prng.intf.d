lib/graph/prng.mli:
