lib/graph/benchmarks.ml: Generators Graph Lazy List
