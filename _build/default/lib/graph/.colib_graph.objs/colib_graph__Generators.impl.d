lib/graph/generators.ml: Array Graph Int List Prng
