lib/graph/dimacs_col.mli: Format Graph
