lib/graph/dsatur.ml: Array Graph Hashtbl
