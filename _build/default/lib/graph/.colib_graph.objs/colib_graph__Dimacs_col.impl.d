lib/graph/dimacs_col.ml: Buffer Format Graph List Printf String
