lib/graph/dsatur.mli: Graph
