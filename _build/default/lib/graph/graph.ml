type t = {
  n : int;
  adj : int array array;       (* sorted neighbor arrays *)
  edge_set : (int, unit) Hashtbl.t;  (* key = u * n + v with u < v *)
  m : int;
}

type builder = {
  bn : int;
  bset : (int, unit) Hashtbl.t;
  mutable bm : int;
  badj : int list array;
}

let builder n =
  if n < 0 then invalid_arg "Graph.builder: negative size";
  { bn = n; bset = Hashtbl.create (4 * n); bm = 0; badj = Array.make (max n 1) [] }

let edge_key n u v = if u < v then (u * n) + v else (v * n) + u

let add_edge b u v =
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  if u < 0 || v < 0 || u >= b.bn || v >= b.bn then
    invalid_arg "Graph.add_edge: vertex out of range";
  let key = edge_key b.bn u v in
  if not (Hashtbl.mem b.bset key) then begin
    Hashtbl.add b.bset key ();
    b.bm <- b.bm + 1;
    b.badj.(u) <- v :: b.badj.(u);
    b.badj.(v) <- u :: b.badj.(v)
  end

let has_edge_b b u v =
  u <> v && u >= 0 && v >= 0 && u < b.bn && v < b.bn
  && Hashtbl.mem b.bset (edge_key b.bn u v)

let freeze b =
  let adj =
    Array.init b.bn (fun v ->
        let a = Array.of_list b.badj.(v) in
        Array.sort Int.compare a;
        a)
  in
  { n = b.bn; adj; edge_set = b.bset; m = b.bm }

let of_edges n edges =
  let b = builder n in
  List.iter (fun (u, v) -> add_edge b u v) edges;
  freeze b

let num_vertices g = g.n
let num_edges g = g.m

let mem_edge g u v =
  u <> v && u >= 0 && v >= 0 && u < g.n && v < g.n
  && Hashtbl.mem g.edge_set (edge_key g.n u v)

let neighbors g v = g.adj.(v)
let degree g v = Array.length g.adj.(v)

let max_degree g =
  let best = ref 0 in
  for v = 0 to g.n - 1 do
    if degree g v > !best then best := degree g v
  done;
  !best

let iter_edges f g =
  for u = 0 to g.n - 1 do
    Array.iter (fun v -> if u < v then f u v) g.adj.(u)
  done

let edges g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    let nb = g.adj.(u) in
    for i = Array.length nb - 1 downto 0 do
      if u < nb.(i) then acc := (u, nb.(i)) :: !acc
    done
  done;
  !acc

let fold_vertices f acc g =
  let acc = ref acc in
  for v = 0 to g.n - 1 do
    acc := f !acc v
  done;
  !acc

let density g =
  if g.n < 2 then 0.0
  else 2.0 *. float_of_int g.m /. (float_of_int g.n *. float_of_int (g.n - 1))

let complement g =
  let b = builder g.n in
  for u = 0 to g.n - 1 do
    for v = u + 1 to g.n - 1 do
      if not (mem_edge g u v) then add_edge b u v
    done
  done;
  freeze b

let induced g vs =
  let index = Hashtbl.create (Array.length vs) in
  Array.iteri
    (fun i v ->
      if Hashtbl.mem index v then invalid_arg "Graph.induced: duplicate vertex";
      Hashtbl.add index v i)
    vs;
  let b = builder (Array.length vs) in
  Array.iteri
    (fun i v ->
      Array.iter
        (fun w ->
          match Hashtbl.find_opt index w with
          | Some j when i < j -> add_edge b i j
          | _ -> ())
        g.adj.(v))
    vs;
  freeze b

let is_proper_coloring g coloring =
  if Array.length coloring <> g.n then
    invalid_arg "Graph.is_proper_coloring: wrong length";
  let ok = ref true in
  iter_edges (fun u v -> if coloring.(u) = coloring.(v) then ok := false) g;
  !ok

let count_colors coloring =
  let seen = Hashtbl.create 16 in
  Array.iter (fun c -> Hashtbl.replace seen c ()) coloring;
  Hashtbl.length seen

let equal a b =
  a.n = b.n && a.m = b.m
  && (try
        iter_edges (fun u v -> if not (mem_edge b u v) then raise Exit) a;
        true
      with Exit -> false)

let pp ppf g =
  Format.fprintf ppf "graph(n=%d, m=%d)" g.n g.m
