let num_colors coloring =
  Array.fold_left (fun acc c -> max acc (c + 1)) 0 coloring

let smallest_free g coloring v =
  let used = Array.make (Graph.degree g v + 1) false in
  Array.iter
    (fun w ->
      let c = coloring.(w) in
      if c >= 0 && c < Array.length used then used.(c) <- true)
    (Graph.neighbors g v);
  let rec find c = if c < Array.length used && used.(c) then find (c + 1) else c in
  find 0

let greedy_in_order g order =
  let n = Graph.num_vertices g in
  if Array.length order <> n then invalid_arg "Dsatur.greedy_in_order";
  let coloring = Array.make n (-1) in
  Array.iter (fun v -> coloring.(v) <- smallest_free g coloring v) order;
  coloring

let welsh_powell g =
  let n = Graph.num_vertices g in
  let order = Array.init n (fun v -> v) in
  Array.sort (fun a b -> compare (Graph.degree g b) (Graph.degree g a)) order;
  greedy_in_order g order

let dsatur g =
  let n = Graph.num_vertices g in
  let coloring = Array.make n (-1) in
  (* adjacent_colors.(v) tracks the distinct colors on v's neighbors *)
  let adjacent_colors = Array.init n (fun _ -> Hashtbl.create 8) in
  let saturation v = Hashtbl.length adjacent_colors.(v) in
  for _ = 1 to n do
    (* pick the uncolored vertex with max saturation, ties by degree *)
    let best = ref (-1) in
    for v = 0 to n - 1 do
      if coloring.(v) < 0 then
        if !best < 0
           || saturation v > saturation !best
           || (saturation v = saturation !best
               && Graph.degree g v > Graph.degree g !best)
        then best := v
    done;
    let v = !best in
    let c = smallest_free g coloring v in
    coloring.(v) <- c;
    Array.iter
      (fun w -> Hashtbl.replace adjacent_colors.(w) c ())
      (Graph.neighbors g v)
  done;
  coloring

let smallest_last g =
  let n = Graph.num_vertices g in
  let removed = Array.make n false in
  let degree_left = Array.init n (fun v -> Graph.degree g v) in
  let order = Array.make n 0 in
  for slot = n - 1 downto 0 do
    let best = ref (-1) in
    for v = 0 to n - 1 do
      if (not removed.(v))
         && (!best < 0 || degree_left.(v) < degree_left.(!best))
      then best := v
    done;
    order.(slot) <- !best;
    removed.(!best) <- true;
    Array.iter
      (fun w -> if not removed.(w) then degree_left.(w) <- degree_left.(w) - 1)
      (Graph.neighbors g !best)
  done;
  greedy_in_order g order

let upper_bound g =
  let a = num_colors (dsatur g) in
  let b = num_colors (welsh_powell g) in
  let c = num_colors (smallest_last g) in
  min a (min b c)
