let complete n =
  let b = Graph.builder n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      Graph.add_edge b u v
    done
  done;
  Graph.freeze b

let cycle n =
  if n < 3 then invalid_arg "Generators.cycle: need at least 3 vertices";
  let b = Graph.builder n in
  for v = 0 to n - 1 do
    Graph.add_edge b v ((v + 1) mod n)
  done;
  Graph.freeze b

let path n =
  let b = Graph.builder n in
  for v = 0 to n - 2 do
    Graph.add_edge b v (v + 1)
  done;
  Graph.freeze b

let star n =
  let b = Graph.builder n in
  for v = 1 to n - 1 do
    Graph.add_edge b 0 v
  done;
  Graph.freeze b

let complete_bipartite a bsz =
  let b = Graph.builder (a + bsz) in
  for u = 0 to a - 1 do
    for v = a to a + bsz - 1 do
      Graph.add_edge b u v
    done
  done;
  Graph.freeze b

let petersen () =
  (* outer 5-cycle 0-4, inner pentagram 5-9, spokes *)
  let b = Graph.builder 10 in
  for i = 0 to 4 do
    Graph.add_edge b i ((i + 1) mod 5);
    Graph.add_edge b (5 + i) (5 + ((i + 2) mod 5));
    Graph.add_edge b i (5 + i)
  done;
  Graph.freeze b

let wheel n =
  if n < 3 then invalid_arg "Generators.wheel: rim must have >= 3 vertices";
  let b = Graph.builder (n + 1) in
  for v = 0 to n - 1 do
    Graph.add_edge b v ((v + 1) mod n);
    Graph.add_edge b v n
  done;
  Graph.freeze b

let crown n =
  if n < 2 then invalid_arg "Generators.crown: need n >= 2";
  let b = Graph.builder (2 * n) in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v then Graph.add_edge b u (n + v)
    done
  done;
  Graph.freeze b

let kneser ~n ~k =
  if k < 1 || n < 2 * k then invalid_arg "Generators.kneser: need n >= 2k >= 2";
  (* enumerate k-subsets of [0..n-1] as sorted int lists *)
  let rec subsets from size =
    if size = 0 then [ [] ]
    else if from >= n then []
    else
      List.map (fun s -> from :: s) (subsets (from + 1) (size - 1))
      @ subsets (from + 1) size
  in
  let verts = Array.of_list (subsets 0 k) in
  let disjoint a bl = List.for_all (fun x -> not (List.mem x bl)) a in
  let b = Graph.builder (Array.length verts) in
  Array.iteri
    (fun i si ->
      Array.iteri
        (fun j sj -> if i < j && disjoint si sj then Graph.add_edge b i j)
        verts)
    verts;
  Graph.freeze b

let queens ~rows ~cols =
  let idx r c = (r * cols) + c in
  let b = Graph.builder (rows * cols) in
  for r1 = 0 to rows - 1 do
    for c1 = 0 to cols - 1 do
      for r2 = r1 to rows - 1 do
        let c2_start = if r2 = r1 then c1 + 1 else 0 in
        for c2 = c2_start to cols - 1 do
          if r1 = r2 || c1 = c2 || abs (r1 - r2) = abs (c1 - c2) then
            Graph.add_edge b (idx r1 c1) (idx r2 c2)
        done
      done
    done
  done;
  Graph.freeze b

let mycielski_of g =
  let n = Graph.num_vertices g in
  (* vertices: 0..n-1 originals, n..2n-1 shadows, 2n the apex *)
  let b = Graph.builder ((2 * n) + 1) in
  Graph.iter_edges (fun u v -> Graph.add_edge b u v) g;
  for v = 0 to n - 1 do
    Array.iter (fun w -> Graph.add_edge b (n + v) w) (Graph.neighbors g v);
    Graph.add_edge b (n + v) (2 * n)
  done;
  Graph.freeze b

let mycielski k =
  if k < 2 then invalid_arg "Generators.mycielski: k must be >= 2";
  (* DIMACS numbering: myciel2 is the 5-cycle, myciel3 the 11-vertex
     Grötzsch graph (chromatic number k + 1) *)
  let rec go g i = if i = k then g else go (mycielski_of g) (i + 1) in
  go (complete 2) 1

let gnp ~n ~p ~seed =
  let rng = Prng.create seed in
  let b = Graph.builder n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Prng.bool rng p then Graph.add_edge b u v
    done
  done;
  Graph.freeze b

let gnm ~n ~m ~seed =
  let max_m = n * (n - 1) / 2 in
  if m > max_m then invalid_arg "Generators.gnm: too many edges";
  let rng = Prng.create seed in
  let b = Graph.builder n in
  let added = ref 0 in
  while !added < m do
    let u = Prng.int rng n and v = Prng.int rng n in
    if u <> v && not (Graph.has_edge_b b u v) then begin
      Graph.add_edge b u v;
      incr added
    end
  done;
  Graph.freeze b

let geometric ~n ~m ~seed =
  let max_m = n * (n - 1) / 2 in
  if m > max_m then invalid_arg "Generators.geometric: too many edges";
  let rng = Prng.create seed in
  let xs = Array.init n (fun _ -> Prng.float rng) in
  let ys = Array.init n (fun _ -> Prng.float rng) in
  let pairs = Array.make max_m (0.0, 0, 0) in
  let k = ref 0 in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let dx = xs.(u) -. xs.(v) and dy = ys.(u) -. ys.(v) in
      pairs.(!k) <- ((dx *. dx) +. (dy *. dy), u, v);
      incr k
    done
  done;
  Array.sort compare pairs;
  let b = Graph.builder n in
  for i = 0 to m - 1 do
    let _, u, v = pairs.(i) in
    Graph.add_edge b u v
  done;
  Graph.freeze b

(* Apply a random relabeling so that planted structure (cliques, insertion
   order) does not align with vertex indices — real benchmark files are not
   index-sorted, and index-sensitive SBP constructions (LI) must not get an
   artificial alignment advantage. *)
let relabel rng g =
  let n = Graph.num_vertices g in
  let perm = Array.init n (fun i -> i) in
  Prng.shuffle rng perm;
  let b = Graph.builder n in
  Graph.iter_edges (fun u v -> Graph.add_edge b perm.(u) perm.(v)) g;
  Graph.freeze b

(* Distribute [total] units over [count] slots, each at most [cap], by random
   increments; requires total <= count * cap. *)
let distribute rng total count cap =
  if total > count * cap then invalid_arg "Generators: infeasible edge count";
  let d = Array.make count 0 in
  let remaining = ref total in
  while !remaining > 0 do
    let i = Prng.int rng count in
    if d.(i) < cap then begin
      d.(i) <- d.(i) + 1;
      decr remaining
    end
  done;
  d

let planted_degenerate ~n ~m ~clique ~seed =
  if clique > n then invalid_arg "Generators.planted_degenerate: clique > n";
  let base = clique * (clique - 1) / 2 in
  if m < base then invalid_arg "Generators.planted_degenerate: m below clique size";
  let rng = Prng.create seed in
  let rest = n - clique in
  let degs = distribute rng (m - base) rest (clique - 1) in
  let b = Graph.builder n in
  for u = 0 to clique - 1 do
    for v = u + 1 to clique - 1 do
      Graph.add_edge b u v
    done
  done;
  (* Preferential attachment: the endpoint bag holds each earlier vertex once
     plus once per incident edge, so selection is degree-weighted. *)
  let bag = ref [] in
  for v = 0 to clique - 1 do
    for _ = 0 to clique do
      bag := v :: !bag
    done
  done;
  let bag = ref (Array.of_list !bag) in
  let bag_len = ref (Array.length !bag) in
  let push v =
    if !bag_len >= Array.length !bag then begin
      let bigger = Array.make (2 * !bag_len) 0 in
      Array.blit !bag 0 bigger 0 !bag_len;
      bag := bigger
    end;
    !bag.(!bag_len) <- v;
    incr bag_len
  in
  for i = 0 to rest - 1 do
    let v = clique + i in
    let wanted = degs.(i) in
    let got = ref 0 in
    let attempts = ref 0 in
    while !got < wanted do
      incr attempts;
      let u =
        if !attempts > 50 * wanted then Prng.int rng v
        else !bag.(Prng.int rng !bag_len)
      in
      if not (Graph.has_edge_b b u v) then begin
        Graph.add_edge b u v;
        push u;
        incr got
      end
    done;
    push v
  done;
  relabel rng (Graph.freeze b)

(* Real register-interference graphs have two structural properties this
   model recreates, because the paper's experiments depend on them:

   - many interference sets are nested (live ranges of temporaries inside the
     same scope), so outside vertices attach to *prefixes* of a fixed clique
     order, quantized to a few depths. Clique vertices beyond every prefix
     depth are mutually interchangeable, giving the large instance-dependent
     vertex symmetry groups the Shatter flow exploits — without them, the
     unsatisfiable K-coloring proofs for the chi > 20 instances degenerate to
     raw pigeonhole instances no clause-learning solver can refute;
   - the edge count beyond the prefix budget is absorbed by interference
     among the outside temporaries themselves (bounded backward degree, so
     the graph stays (clique-1)-degenerate and the chromatic number is
     exactly [clique]). *)
let split_register ~n ~m ~clique ~seed =
  if clique > n then invalid_arg "Generators.split_register: clique > n";
  let base = clique * (clique - 1) / 2 in
  if m < base then invalid_arg "Generators.split_register: m below clique size";
  let rng = Prng.create seed in
  let rest = n - clique in
  let budget = m - base in
  let prefix_max = max 1 (min (clique - 21) 18) in
  let quanta =
    List.sort_uniq Int.compare
      [ prefix_max; max 1 (prefix_max / 2); max 1 (prefix_max / 4) ]
  in
  let quanta = Array.of_list quanta in
  (* backward-edge cap for outside vertex j with prefix depth d *)
  let back_cap j d = min j (clique - 1 - d) in
  (* 1. assign prefix depths in twin groups, preferring the deepest quantum,
     without exceeding the edge budget *)
  let depths = Array.make rest 1 in
  let sum_d = ref 0 in
  let i = ref 0 in
  while !i < rest do
    let group = min (1 + Prng.int rng 4) (rest - !i) in
    let q =
      if Prng.float rng < 0.6 then quanta.(Array.length quanta - 1)
      else quanta.(Prng.int rng (Array.length quanta))
    in
    for gmember = 0 to group - 1 do
      depths.(!i + gmember) <- q
    done;
    sum_d := !sum_d + (group * q);
    i := !i + group
  done;
  (* shrink depths if the budget cannot fit them *)
  let j = ref 0 in
  while !sum_d > budget && !j < rest do
    sum_d := !sum_d - depths.(!j) + 1;
    depths.(!j) <- 1;
    incr j
  done;
  if !sum_d > budget then
    invalid_arg "Generators.split_register: edge count below prefix minimum";
  (* 2. distribute the remaining edges as outside-outside interference,
     respecting per-vertex backward caps; if capacity is short, deepen
     prefixes again *)
  let backs = Array.make rest 0 in
  let capacity () =
    let c = ref 0 in
    for v = 0 to rest - 1 do
      c := !c + back_cap v depths.(v)
    done;
    !c
  in
  let v = ref 0 in
  while budget - !sum_d > capacity () && !v < rest do
    (* deepen vertex !v to the max prefix *)
    if depths.(!v) < prefix_max then begin
      sum_d := !sum_d - depths.(!v) + prefix_max;
      depths.(!v) <- prefix_max
    end;
    incr v
  done;
  if budget - !sum_d > capacity () then
    invalid_arg "Generators.split_register: infeasible edge count";
  let remaining = ref (budget - !sum_d) in
  while !remaining > 0 do
    let v = Prng.int rng rest in
    if backs.(v) < back_cap v depths.(v) then begin
      backs.(v) <- backs.(v) + 1;
      decr remaining
    end
  done;
  (* 3. build the graph *)
  let b = Graph.builder n in
  for u = 0 to clique - 1 do
    for w = u + 1 to clique - 1 do
      Graph.add_edge b u w
    done
  done;
  for j = 0 to rest - 1 do
    let v = clique + j in
    for u = 0 to depths.(j) - 1 do
      Graph.add_edge b u v
    done;
    let got = ref 0 in
    while !got < backs.(j) do
      let u = clique + Prng.int rng j in
      if not (Graph.has_edge_b b u v) then begin
        Graph.add_edge b u v;
        incr got
      end
    done
  done;
  relabel rng (Graph.freeze b)

let frequency_assignment ~demands ~adjacent =
  let nregions = Array.length demands in
  let offsets = Array.make (nregions + 1) 0 in
  for r = 0 to nregions - 1 do
    if demands.(r) < 0 then
      invalid_arg "Generators.frequency_assignment: negative demand";
    offsets.(r + 1) <- offsets.(r) + demands.(r)
  done;
  let b = Graph.builder offsets.(nregions) in
  for r = 0 to nregions - 1 do
    for i = offsets.(r) to offsets.(r + 1) - 1 do
      for j = i + 1 to offsets.(r + 1) - 1 do
        Graph.add_edge b i j
      done
    done
  done;
  List.iter
    (fun (r1, r2) ->
      if r1 < 0 || r2 < 0 || r1 >= nregions || r2 >= nregions then
        invalid_arg "Generators.frequency_assignment: region out of range";
      for i = offsets.(r1) to offsets.(r1 + 1) - 1 do
        for j = offsets.(r2) to offsets.(r2 + 1) - 1 do
          Graph.add_edge b i j
        done
      done)
    adjacent;
  Graph.freeze b

let interval_conflicts intervals =
  let a = Array.of_list intervals in
  let n = Array.length a in
  let b = Graph.builder n in
  for i = 0 to n - 1 do
    let s1, e1 = a.(i) in
    if s1 >= e1 then invalid_arg "Generators.interval_conflicts: empty interval";
    for j = i + 1 to n - 1 do
      let s2, e2 = a.(j) in
      if s1 < e2 && s2 < e1 then Graph.add_edge b i j
    done
  done;
  Graph.freeze b
