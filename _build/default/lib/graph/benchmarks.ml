type family =
  | Random
  | Book
  | Mileage
  | Games
  | Queens
  | Register
  | Mycielski

type t = {
  name : string;
  family : family;
  graph : Graph.t Lazy.t;
  paper_vertices : int;
  paper_edges : int;
  paper_chromatic : int option;
}

let family_name = function
  | Random -> "random"
  | Book -> "book"
  | Mileage -> "mileage"
  | Games -> "games"
  | Queens -> "queens"
  | Register -> "register"
  | Mycielski -> "mycielski"

let mk name family graph ~pv ~pe ~chi =
  { name; family; graph; paper_vertices = pv; paper_edges = pe;
    paper_chromatic = chi }

(* Seeds are arbitrary but fixed; changing them changes every downstream
   number, so do not. *)
let all =
  [
    mk "anna" Book
      (lazy (Generators.planted_degenerate ~n:138 ~m:493 ~clique:11 ~seed:101))
      ~pv:138 ~pe:986 ~chi:(Some 11);
    mk "david" Book
      (lazy (Generators.planted_degenerate ~n:87 ~m:406 ~clique:11 ~seed:102))
      ~pv:87 ~pe:812 ~chi:(Some 11);
    mk "DSJC125.1" Random
      (lazy (Generators.gnm ~n:125 ~m:736 ~seed:103))
      ~pv:125 ~pe:1472 ~chi:(Some 5);
    mk "DSJC125.9" Random
      (lazy (Generators.gnm ~n:125 ~m:6961 ~seed:104))
      ~pv:125 ~pe:13922 ~chi:None;
    mk "games120" Games
      (lazy (Generators.planted_degenerate ~n:120 ~m:638 ~clique:9 ~seed:105))
      ~pv:120 ~pe:1276 ~chi:(Some 9);
    mk "huck" Book
      (lazy (Generators.planted_degenerate ~n:74 ~m:301 ~clique:11 ~seed:106))
      ~pv:74 ~pe:602 ~chi:(Some 11);
    mk "jean" Book
      (lazy (Generators.planted_degenerate ~n:80 ~m:254 ~clique:10 ~seed:107))
      ~pv:80 ~pe:508 ~chi:(Some 10);
    mk "miles250" Mileage
      (lazy (Generators.geometric ~n:128 ~m:387 ~seed:108))
      ~pv:128 ~pe:774 ~chi:(Some 8);
    mk "mulsol.i.2" Register
      (lazy (Generators.split_register ~n:188 ~m:3885 ~clique:31 ~seed:109))
      ~pv:188 ~pe:3885 ~chi:None;
    mk "mulsol.i.4" Register
      (lazy (Generators.split_register ~n:185 ~m:3946 ~clique:31 ~seed:110))
      ~pv:185 ~pe:3946 ~chi:None;
    mk "myciel3" Mycielski
      (lazy (Generators.mycielski 3))
      ~pv:11 ~pe:20 ~chi:(Some 4);
    mk "myciel4" Mycielski
      (lazy (Generators.mycielski 4))
      ~pv:23 ~pe:71 ~chi:(Some 5);
    mk "myciel5" Mycielski
      (lazy (Generators.mycielski 5))
      ~pv:47 ~pe:236 ~chi:(Some 6);
    mk "queen5_5" Queens
      (lazy (Generators.queens ~rows:5 ~cols:5))
      ~pv:25 ~pe:320 ~chi:(Some 5);
    mk "queen6_6" Queens
      (lazy (Generators.queens ~rows:6 ~cols:6))
      ~pv:36 ~pe:580 ~chi:(Some 7);
    mk "queen7_7" Queens
      (lazy (Generators.queens ~rows:7 ~cols:7))
      ~pv:49 ~pe:952 ~chi:(Some 7);
    mk "queen8_12" Queens
      (lazy (Generators.queens ~rows:8 ~cols:12))
      ~pv:96 ~pe:2736 ~chi:(Some 12);
    mk "zeroin.i.1" Register
      (lazy (Generators.split_register ~n:211 ~m:4100 ~clique:49 ~seed:111))
      ~pv:211 ~pe:4100 ~chi:None;
    mk "zeroin.i.2" Register
      (lazy (Generators.split_register ~n:211 ~m:3541 ~clique:30 ~seed:112))
      ~pv:211 ~pe:3541 ~chi:None;
    mk "zeroin.i.3" Register
      (lazy (Generators.split_register ~n:206 ~m:3540 ~clique:30 ~seed:113))
      ~pv:206 ~pe:3540 ~chi:None;
  ]

let find name = List.find (fun b -> b.name = name) all
let queens_family = List.filter (fun b -> b.family = Queens) all
