let is_clique g vs =
  let ok = ref true in
  Array.iteri
    (fun i u ->
      Array.iteri (fun j v -> if i < j && not (Graph.mem_edge g u v) then ok := false) vs)
    vs;
  !ok

let greedy g =
  let n = Graph.num_vertices g in
  if n = 0 then [||]
  else begin
    let order = Array.init n (fun v -> v) in
    Array.sort (fun a b -> compare (Graph.degree g b) (Graph.degree g a)) order;
    let best = ref [||] in
    (* try a few seeds: each of the top-degree vertices *)
    let tries = min n 8 in
    for t = 0 to tries - 1 do
      let members = ref [ order.(t) ] in
      Array.iter
        (fun v ->
          if v <> order.(t)
             && List.for_all (fun u -> Graph.mem_edge g u v) !members
          then members := v :: !members)
        order;
      let c = Array.of_list !members in
      if Array.length c > Array.length !best then best := c
    done;
    Array.sort Int.compare !best;
    !best
  end

(* Branch and bound in the style of MCQ: candidates are greedily colored,
   and a branch is cut when |current| + colors(candidates) <= |best|. *)
let max_clique ?(node_limit = 10_000_000) g =
  let n = Graph.num_vertices g in
  if n = 0 then [||]
  else begin
    let best = ref (greedy g) in
    let nodes = ref 0 in
    let rec expand current cand =
      incr nodes;
      if !nodes <= node_limit then begin
        (* color candidates greedily; process highest color class first *)
        let color = Hashtbl.create (List.length cand) in
        let classes = ref [] in
        List.iter
          (fun v ->
            let rec find_class = function
              | [] ->
                classes := !classes @ [ ref [ v ] ];
                List.length !classes
              | cls :: rest ->
                if List.for_all (fun u -> not (Graph.mem_edge g u v)) !cls
                then begin
                  cls := v :: !cls;
                  List.length !classes - List.length rest
                end
                else find_class rest
            in
            Hashtbl.replace color v (find_class !classes))
          cand;
        let sorted =
          List.sort
            (fun a b -> compare (Hashtbl.find color b) (Hashtbl.find color a))
            cand
        in
        let rec loop cand = function
          | [] -> ()
          | v :: rest ->
            if List.length current + Hashtbl.find color v > Array.length !best
            then begin
              let current' = v :: current in
              let cand' = List.filter (Graph.mem_edge g v) cand in
              if cand' = [] then begin
                if List.length current' > Array.length !best then begin
                  let c = Array.of_list current' in
                  Array.sort Int.compare c;
                  best := c
                end
              end
              else expand current' cand';
              loop (List.filter (( <> ) v) cand) rest
            end
        in
        loop cand sorted
      end
    in
    let order = Array.init n (fun v -> v) in
    Array.sort (fun a b -> compare (Graph.degree g b) (Graph.degree g a)) order;
    expand [] (Array.to_list order);
    !best
  end
