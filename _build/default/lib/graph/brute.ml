let k_colorable g k =
  let n = Graph.num_vertices g in
  if n = 0 then Some [||]
  else if k <= 0 then None
  else begin
    let coloring = Array.make n (-1) in
    let rec assign v max_used =
      if v = n then true
      else begin
        let limit = min (k - 1) (max_used + 1) in
        let rec try_color c =
          if c > limit then false
          else begin
            let conflict =
              Array.exists (fun w -> coloring.(w) = c) (Graph.neighbors g v)
            in
            if not conflict then begin
              coloring.(v) <- c;
              if assign (v + 1) (max max_used c) then true
              else begin
                coloring.(v) <- -1;
                try_color (c + 1)
              end
            end
            else try_color (c + 1)
          end
        in
        try_color 0
      end
    in
    if assign 0 (-1) then Some coloring else None
  end

let chromatic_number g =
  let n = Graph.num_vertices g in
  if n = 0 then 0
  else begin
    let rec search k =
      if k > n then n
      else match k_colorable g k with Some _ -> k | None -> search (k + 1)
    in
    search 1
  end
