(** DIMACS graph-coloring file format (".col").

    The standard format of the DIMACS coloring benchmark suite:
    comment lines start with [c], the problem line is [p edge <n> <m>],
    and each edge line is [e <u> <v>] with 1-based vertex numbers. *)

val parse : string -> Graph.t
(** Parse the contents of a [.col] file. Raises [Failure] with a descriptive
    message on malformed input. Duplicate edge lines and both orientations of
    the same edge are merged (several DIMACS files list each edge twice). *)

val parse_file : string -> Graph.t

val write : Format.formatter -> ?comment:string -> Graph.t -> unit
val to_string : ?comment:string -> Graph.t -> string
val write_file : string -> ?comment:string -> Graph.t -> unit
