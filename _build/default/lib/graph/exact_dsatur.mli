(** Exact graph coloring by implicit enumeration (Brélaz 1979, after Brown
    1972) — the specialized-algorithm family the paper's Section 2.1
    surveys, provided as an independent native comparator to the
    reduction-based flow.

    Branch and bound over DSATUR-ordered vertex assignments: an initial
    clique is pre-colored (fixing one representative per color class, which
    already breaks the color symmetry the paper's SBPs target), vertices are
    picked by maximal saturation degree, and a branch assigns each feasible
    used color plus at most one fresh color; branches that cannot beat the
    incumbent are cut. *)

type outcome =
  | Exact of int * int array
      (** proven chromatic number and an optimal coloring *)
  | Bounds of int * int
      (** search budget exhausted: best-known lower and upper bounds *)

val solve : ?node_limit:int -> ?deadline:float -> Graph.t -> outcome
(** [node_limit] caps branch-and-bound nodes (default [5_000_000]);
    [deadline] is an absolute [Unix.gettimeofday]-style timestamp checked
    periodically. *)

val chromatic_number : ?node_limit:int -> ?deadline:float -> Graph.t -> int option
(** [Some chi] when proven within budget. *)
