lib/solver/vec.ml: Array
