lib/solver/optimize.ml: Colib_sat Engine Format List Types
