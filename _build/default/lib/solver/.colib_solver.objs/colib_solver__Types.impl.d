lib/solver/types.ml: Unix
