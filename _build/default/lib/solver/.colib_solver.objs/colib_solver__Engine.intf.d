lib/solver/engine.mli: Colib_sat Types
