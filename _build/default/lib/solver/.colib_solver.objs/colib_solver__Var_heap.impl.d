lib/solver/var_heap.ml: Array
