lib/solver/engine.ml: Array Colib_sat Float Hashtbl List Option Types Unix Var_heap Vec
