lib/solver/var_heap.mli:
