lib/solver/optimize.mli: Colib_sat Engine Format Types
