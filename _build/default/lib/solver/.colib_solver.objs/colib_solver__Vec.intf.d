lib/solver/vec.mli:
