type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;
}

let create ?(capacity = 16) ~dummy () =
  { data = Array.make (max capacity 1) dummy; len = 0; dummy }

let size v = v.len

let push v x =
  if v.len = Array.length v.data then begin
    let bigger = Array.make (2 * v.len) v.dummy in
    Array.blit v.data 0 bigger 0 v.len;
    v.data <- bigger
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get";
  v.data.(i)

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Vec.set";
  v.data.(i) <- x

let clear v = v.len <- 0

let shrink v n =
  if n < 0 || n > v.len then invalid_arg "Vec.shrink";
  v.len <- n

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop";
  v.len <- v.len - 1;
  v.data.(v.len)

let last v =
  if v.len = 0 then invalid_arg "Vec.last";
  v.data.(v.len - 1)

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let exists p v =
  let rec go i = i < v.len && (p v.data.(i) || go (i + 1)) in
  go 0

let to_list v =
  let rec go i acc = if i < 0 then acc else go (i - 1) (v.data.(i) :: acc) in
  go (v.len - 1) []

let filter_in_place p v =
  let j = ref 0 in
  for i = 0 to v.len - 1 do
    if p v.data.(i) then begin
      v.data.(!j) <- v.data.(i);
      incr j
    end
  done;
  v.len <- !j

let sort_in_place cmp v =
  let a = Array.sub v.data 0 v.len in
  Array.sort cmp a;
  Array.blit a 0 v.data 0 v.len
