(** Growable arrays (amortized O(1) push), used throughout the solver for
    watch lists and constraint databases. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [dummy] fills unused slots; it is never observable through the API. *)

val size : 'a t -> int
val push : 'a t -> 'a -> unit
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val clear : 'a t -> unit
val shrink : 'a t -> int -> unit
(** [shrink v n] truncates to the first [n] elements. *)

val pop : 'a t -> 'a
(** Remove and return the last element. Raises [Invalid_argument] if empty. *)

val last : 'a t -> 'a
val iter : ('a -> unit) -> 'a t -> unit
val exists : ('a -> bool) -> 'a t -> bool
val to_list : 'a t -> 'a list
val filter_in_place : ('a -> bool) -> 'a t -> unit
(** Keep only elements satisfying the predicate, preserving order. *)

val sort_in_place : ('a -> 'a -> int) -> 'a t -> unit
