(** Shared solver types: engine identities, budgets, outcomes, statistics. *)

(** The solver engines compared in the paper's experiments. The first four
    are CDCL-style specialized 0-1 ILP solvers and a generic-ILP stand-in;
    [Pbs1] is the retired original PBS used only in the appendix (Table 5). *)
type engine =
  | Pbs2    (** CDCL, 1-UIP learning, geometric restarts, phase saving *)
  | Galena  (** CDCL, 1-UIP learning, very lazy restarts, no phase saving *)
  | Pueblo  (** CDCL, 1-UIP learning, Luby restarts, aggressive DB cleanup *)
  | Cplex   (** learning-free branch & bound: the generic-ILP baseline *)
  | Pbs1    (** legacy: slow decay, no phase saving, geometric restarts *)

let engine_name = function
  | Pbs2 -> "PBS II"
  | Galena -> "Galena"
  | Pueblo -> "Pueblo"
  | Cplex -> "CPLEX*"
  | Pbs1 -> "PBS"

let all_engines = [ Pbs2; Cplex; Galena; Pueblo ]

type budget = {
  deadline : float option;      (** absolute [Unix.gettimeofday] deadline *)
  max_conflicts : int option;
}

let no_budget = { deadline = None; max_conflicts = None }
let within_seconds s = { deadline = Some (Unix.gettimeofday () +. s); max_conflicts = None }

type outcome =
  | Sat of bool array   (** a model, indexed by variable *)
  | Unsat
  | Unknown             (** budget exhausted *)

type stats = {
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable learned : int;
  mutable restarts : int;
  mutable removed : int;  (** learned clauses deleted by DB reduction *)
}

let fresh_stats () =
  { conflicts = 0; decisions = 0; propagations = 0; learned = 0; restarts = 0;
    removed = 0 }
