lib/core/flow.ml: Colib_encode Colib_graph Colib_sat Colib_solver Colib_symmetry List Option Unix
