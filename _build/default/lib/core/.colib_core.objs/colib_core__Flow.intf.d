lib/core/flow.mli: Colib_encode Colib_graph Colib_sat Colib_solver
