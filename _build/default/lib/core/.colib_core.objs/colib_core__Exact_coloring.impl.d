lib/core/exact_coloring.ml: Array Colib_encode Colib_graph Colib_solver Flow List Unix
