lib/core/exact_coloring.mli: Colib_encode Colib_graph Colib_solver
