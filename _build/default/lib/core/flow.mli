(** The paper's end-to-end symmetry-breaking flow (Sections 2.4–4):

    graph → 0-1 ILP encoding → instance-independent SBPs (optional) →
    symmetry detection on the formula graph (Saucy-style) →
    instance-dependent lex-leader SBPs (optional, Shatter-style) →
    0-1 ILP solving with a chosen engine.

    Each stage is timed and its statistics exposed, which is what the
    benchmark harness consumes to regenerate Tables 2–5. *)

module Sbp = Colib_encode.Sbp

type config = {
  engine : Colib_solver.Types.engine;
  k : int;                   (** color limit K (20 and 30 in the paper) *)
  sbp : Sbp.construction;    (** instance-independent construction *)
  instance_dependent : bool; (** detect symmetries and add lex-leader SBPs *)
  sbp_depth : int;           (** lex-leader truncation per generator *)
  sym_node_budget : int;     (** automorphism search budget *)
  timeout : float;           (** seconds for the solving phase *)
}

val config :
  ?engine:Colib_solver.Types.engine ->
  ?sbp:Sbp.construction ->
  ?instance_dependent:bool ->
  ?sbp_depth:int ->
  ?sym_node_budget:int ->
  ?timeout:float ->
  k:int ->
  unit ->
  config
(** Defaults: PBS II engine, no instance-independent SBPs, instance-dependent
    SBPs on, untruncated lex-leader chains, budget 200_000 nodes,
    timeout 10 s. *)

type sym_info = {
  order_log10 : float;     (** log10 of the detected symmetry group order *)
  num_generators : int;    (** consistency-validated generators *)
  detection_time : float;  (** seconds spent building the graph + searching *)
  complete : bool;         (** search finished within its node budget *)
}

type outcome =
  | Optimal of int        (** proven optimal color count within K *)
  | Best of int           (** a coloring was found; optimality unproven *)
  | No_coloring           (** not K-colorable (chromatic number > K) *)
  | Timed_out             (** budget exhausted with no coloring found *)

type result = {
  outcome : outcome;
  coloring : int array option;
  solve_time : float;
  sym : sym_info option;  (** present when [instance_dependent] was set *)
  stats_encoded : Colib_sat.Formula.stats;
      (** formula size after instance-independent SBPs, before
          instance-dependent ones — the sizes reported in Table 2 *)
  stats_final : Colib_sat.Formula.stats;
  solver : Colib_solver.Types.stats;
}

val run : Colib_graph.Graph.t -> config -> result

val symmetry_stats :
  ?node_budget:int ->
  Colib_graph.Graph.t ->
  k:int ->
  sbp:Sbp.construction ->
  sym_info * Colib_sat.Formula.stats
(** Encode, add the instance-independent construction, and measure residual
    symmetries — one cell of Table 2. *)

val decide_k_colorable :
  ?engine:Colib_solver.Types.engine ->
  ?timeout:float ->
  Colib_graph.Graph.t ->
  k:int ->
  [ `Yes of int array | `No | `Unknown ]
(** Decision variant: stop at the first model instead of optimizing. *)
