module Graph = Colib_graph.Graph
module Formula = Colib_sat.Formula
module Encoding = Colib_encode.Encoding
module Sbp = Colib_encode.Sbp
module Types = Colib_solver.Types
module Engine = Colib_solver.Engine
module Optimize = Colib_solver.Optimize
module Formula_graph = Colib_symmetry.Formula_graph
module Lex_leader = Colib_symmetry.Lex_leader
module Auto = Colib_symmetry.Auto

type config = {
  engine : Types.engine;
  k : int;
  sbp : Sbp.construction;
  instance_dependent : bool;
  sbp_depth : int;
  sym_node_budget : int;
  timeout : float;
}

let config ?(engine = Types.Pbs2) ?(sbp = Sbp.No_sbp)
    ?(instance_dependent = true) ?(sbp_depth = max_int)
    ?(sym_node_budget = 200_000) ?(timeout = 10.0) ~k () =
  { engine; k; sbp; instance_dependent; sbp_depth; sym_node_budget; timeout }

type sym_info = {
  order_log10 : float;
  num_generators : int;
  detection_time : float;
  complete : bool;
}

type outcome =
  | Optimal of int
  | Best of int
  | No_coloring
  | Timed_out

type result = {
  outcome : outcome;
  coloring : int array option;
  solve_time : float;
  sym : sym_info option;
  stats_encoded : Formula.stats;
  stats_final : Formula.stats;
  solver : Types.stats;
}

let detect_and_break ~node_budget ~depth enc =
  let t0 = Unix.gettimeofday () in
  let res, lit_perms = Formula_graph.detect ~node_budget enc.Encoding.formula in
  let _ = Lex_leader.add_all ~depth enc.Encoding.formula lit_perms in
  let dt = Unix.gettimeofday () -. t0 in
  {
    order_log10 = res.Auto.order_log10;
    num_generators = List.length lit_perms;
    detection_time = dt;
    complete = res.Auto.complete;
  }

let run g cfg =
  let enc = Encoding.encode g ~k:cfg.k in
  Sbp.add cfg.sbp enc;
  let stats_encoded = Formula.stats enc.Encoding.formula in
  let sym =
    if cfg.instance_dependent then
      Some
        (detect_and_break ~node_budget:cfg.sym_node_budget
           ~depth:cfg.sbp_depth enc)
    else None
  in
  let stats_final = Formula.stats enc.Encoding.formula in
  let t0 = Unix.gettimeofday () in
  let eng = Engine.create cfg.engine (Formula.num_vars enc.Encoding.formula) in
  Engine.add_formula eng enc.Encoding.formula;
  let budget = Types.within_seconds cfg.timeout in
  let obj = Option.get (Formula.objective enc.Encoding.formula) in
  let opt_result = Optimize.minimize eng obj budget in
  let solve_time = Unix.gettimeofday () -. t0 in
  let outcome, coloring =
    match opt_result with
    | Optimize.Optimal (m, c) -> (Optimal c, Some (Encoding.decode enc m))
    | Optimize.Satisfiable (m, c) -> (Best c, Some (Encoding.decode enc m))
    | Optimize.Unsatisfiable -> (No_coloring, None)
    | Optimize.Timeout -> (Timed_out, None)
  in
  {
    outcome;
    coloring;
    solve_time;
    sym;
    stats_encoded;
    stats_final;
    solver = Engine.stats eng;
  }

let symmetry_stats ?(node_budget = 200_000) g ~k ~sbp =
  let enc = Encoding.encode g ~k in
  Sbp.add sbp enc;
  let stats = Formula.stats enc.Encoding.formula in
  let t0 = Unix.gettimeofday () in
  let res, lit_perms = Formula_graph.detect ~node_budget enc.Encoding.formula in
  let dt = Unix.gettimeofday () -. t0 in
  ( {
      order_log10 = res.Auto.order_log10;
      num_generators = List.length lit_perms;
      detection_time = dt;
      complete = res.Auto.complete;
    },
    stats )

let decide_k_colorable ?(engine = Types.Pbs2) ?(timeout = 10.0) g ~k =
  let enc = Encoding.encode g ~k in
  let eng = Engine.create engine (Formula.num_vars enc.Encoding.formula) in
  Engine.add_formula eng enc.Encoding.formula;
  match Engine.solve eng (Types.within_seconds timeout) with
  | Types.Sat m -> `Yes (Encoding.decode enc m)
  | Types.Unsat -> `No
  | Types.Unknown -> `Unknown
