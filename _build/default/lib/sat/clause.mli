(** CNF clauses: disjunctions of literals.

    Clauses are normalized on construction: duplicate literals are removed and
    literals are sorted. A clause containing both a literal and its complement
    is a tautology and is reported as such. *)

type t = private Lit.t array

type norm =
  | Clause of t      (** a proper, normalized clause *)
  | Tautology        (** contains [l] and [not l]; always satisfied *)
  | Empty            (** no literals; always falsified *)

val make : Lit.t list -> norm
(** [make lits] normalizes [lits] into a clause, detecting tautologies and the
    empty clause. *)

val of_array_unchecked : Lit.t array -> t
(** Wrap an array that is already known to be duplicate-free and
    tautology-free. The array is not copied. *)

val lits : t -> Lit.t array
(** The underlying literal array. Do not mutate. *)

val length : t -> int
val mem : Lit.t -> t -> bool
val fold : ('a -> Lit.t -> 'a) -> 'a -> t -> 'a
val iter : (Lit.t -> unit) -> t -> unit
val to_list : t -> Lit.t list
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
