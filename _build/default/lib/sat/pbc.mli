(** Normalized pseudo-Boolean constraints.

    A constraint is stored in the normal form [sum_i a_i * l_i >= b] where all
    coefficients [a_i] are strictly positive integers and the [l_i] are
    literals over distinct variables. Any linear constraint over literals with
    integer coefficients ([<=], [>=] or [=]) can be brought to this form using
    [not l = 1 - l] (see Section 2.3 of the paper). *)

type t = private {
  coefs : int array;  (** strictly positive, saturated at [bound] *)
  lits : Lit.t array; (** distinct variables, same length as [coefs] *)
  bound : int;        (** right-hand side of [>=] *)
}

type norm =
  | True              (** trivially satisfied (bound <= 0) *)
  | False             (** trivially falsified (coefficient sum < bound) *)
  | Clause of Lit.t list
      (** every coefficient reaches the bound: an ordinary clause *)
  | Pb of t           (** a genuine pseudo-Boolean constraint *)

val make_ge : (int * Lit.t) list -> int -> norm
(** [make_ge terms b] normalizes [sum terms >= b]. Coefficients may be
    negative and literals may repeat or clash; everything is folded into the
    normal form. *)

val make_le : (int * Lit.t) list -> int -> norm
(** [make_le terms b] normalizes [sum terms <= b]. *)

val make_eq : (int * Lit.t) list -> int -> norm list
(** [make_eq terms b] is the pair of constraints encoding [sum terms = b]. *)

val at_most : int -> Lit.t list -> norm
(** [at_most k lits]: at most [k] of [lits] are true. *)

val at_least : int -> Lit.t list -> norm
(** [at_least k lits]: at least [k] of [lits] are true. *)

val arity : t -> int
val is_cardinality : t -> bool
(** [true] when every coefficient is 1. *)

val slack_full : t -> int
(** [sum coefs - bound]: the slack when no literal is falsified. *)

val satisfied_by : (Lit.t -> bool) -> t -> bool
(** [satisfied_by value c] evaluates [c] under the total assignment [value]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
