type t = {
  mutable nvars : int;
  mutable clauses_rev : Clause.t list;
  mutable nclauses : int;
  mutable pbs_rev : Pbc.t list;
  mutable npbs : int;
  mutable objective : (int * Lit.t) list option;
  mutable unsat : bool;
  names : (int, string) Hashtbl.t;
}

let create () =
  {
    nvars = 0;
    clauses_rev = [];
    nclauses = 0;
    pbs_rev = [];
    npbs = 0;
    objective = None;
    unsat = false;
    names = Hashtbl.create 64;
  }

let fresh_var ?name f =
  let v = f.nvars in
  f.nvars <- v + 1;
  (match name with Some n -> Hashtbl.replace f.names v n | None -> ());
  v

let fresh_vars ?prefix f n =
  Array.init n (fun i ->
      let name = Option.map (fun p -> Printf.sprintf "%s%d" p i) prefix in
      fresh_var ?name f)

let num_vars f = f.nvars
let num_clauses f = f.nclauses
let num_pbs f = f.npbs

let name_of_var f v =
  try Hashtbl.find f.names v with Not_found -> Printf.sprintf "x%d" (v + 1)

let check_lits f lits =
  List.iter
    (fun l ->
      if Lit.var l >= f.nvars then
        invalid_arg
          (Printf.sprintf "Formula: literal %d refers to unallocated variable"
             (Lit.to_dimacs l)))
    lits

let add_clause f lits =
  check_lits f lits;
  match Clause.make lits with
  | Clause.Tautology -> ()
  | Clause.Empty -> f.unsat <- true
  | Clause.Clause c ->
    f.clauses_rev <- c :: f.clauses_rev;
    f.nclauses <- f.nclauses + 1

let add_pb f norm =
  match norm with
  | Pbc.True -> ()
  | Pbc.False -> f.unsat <- true
  | Pbc.Clause lits -> add_clause f lits
  | Pbc.Pb c ->
    check_lits f (Array.to_list c.Pbc.lits);
    f.pbs_rev <- c :: f.pbs_rev;
    f.npbs <- f.npbs + 1

let add_pb_ge f terms b = add_pb f (Pbc.make_ge terms b)
let add_pb_le f terms b = add_pb f (Pbc.make_le terms b)
let add_pb_eq f terms b = List.iter (add_pb f) (Pbc.make_eq terms b)

let add_exactly_one f lits =
  add_pb_eq f (List.map (fun l -> (1, l)) lits) 1

let set_objective_min f terms =
  if f.objective <> None then invalid_arg "Formula: objective already set";
  check_lits f (List.map snd terms);
  f.objective <- Some terms

let objective f = f.objective
let trivially_unsat f = f.unsat
let clauses f = List.rev f.clauses_rev
let pbs f = List.rev f.pbs_rev
let iter_clauses g f = List.iter g (clauses f)
let iter_pbs g f = List.iter g (pbs f)

let objective_value f value =
  match f.objective with
  | None -> 0
  | Some terms ->
    List.fold_left (fun s (c, l) -> if value l then s + c else s) 0 terms

let check_model f value =
  (not f.unsat)
  && List.for_all
       (fun c -> Array.exists value (Clause.lits c))
       f.clauses_rev
  && List.for_all (Pbc.satisfied_by value) f.pbs_rev

type stats = {
  vars : int;
  cnf_clauses : int;
  pb_constraints : int;
  cnf_literals : int;
}

let stats f =
  let cnf_literals =
    List.fold_left (fun s c -> s + Clause.length c) 0 f.clauses_rev
  in
  {
    vars = f.nvars;
    cnf_clauses = f.nclauses;
    pb_constraints = f.npbs;
    cnf_literals;
  }

let pp_stats ppf s =
  Format.fprintf ppf "%d vars, %d CNF clauses (%d lits), %d PB constraints"
    s.vars s.cnf_clauses s.cnf_literals s.pb_constraints
