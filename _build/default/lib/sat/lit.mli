(** Boolean literals.

    A literal is a Boolean variable or its complement. Variables are
    non-negative integers [0 .. nvars-1]; a literal packs the variable and its
    sign into a single non-negative integer ([2 * var] for the positive
    literal, [2 * var + 1] for the negative one), which makes literals cheap
    to store in arrays and usable as array indices. *)

type t = private int

val make : int -> bool -> t
(** [make v sign] is the positive literal of variable [v] when [sign] is
    [true], the negative literal otherwise. [v] must be non-negative. *)

val pos : int -> t
(** [pos v] is the positive literal of variable [v]. *)

val neg : int -> t
(** [neg v] is the negative literal of variable [v]. *)

val var : t -> int
(** [var l] is the variable underlying [l]. *)

val sign : t -> bool
(** [sign l] is [true] iff [l] is a positive literal. *)

val negate : t -> t
(** [negate l] is the complement of [l]. *)

val to_index : t -> int
(** [to_index l] is the packed integer representation, usable as an array
    index in [0 .. 2*nvars-1]. *)

val of_index : int -> t
(** Inverse of {!to_index}. The argument must be non-negative. *)

val to_dimacs : t -> int
(** DIMACS convention: [var l + 1] for positive literals, negated for
    negative ones. *)

val of_dimacs : int -> t
(** Inverse of {!to_dimacs}. The argument must be non-zero. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
