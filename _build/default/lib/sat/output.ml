let to_dimacs_cnf ppf f =
  if Formula.num_pbs f > 0 then
    invalid_arg "Output.to_dimacs_cnf: formula has PB constraints";
  if Formula.objective f <> None then
    invalid_arg "Output.to_dimacs_cnf: formula has an objective";
  Format.fprintf ppf "p cnf %d %d\n" (Formula.num_vars f)
    (Formula.num_clauses f);
  Formula.iter_clauses
    (fun c ->
      Clause.iter (fun l -> Format.fprintf ppf "%d " (Lit.to_dimacs l)) c;
      Format.fprintf ppf "0\n")
    f

let opb_lit ppf l =
  if Lit.sign l then Format.fprintf ppf "x%d" (Lit.var l + 1)
  else Format.fprintf ppf "~x%d" (Lit.var l + 1)

let opb_term ppf (c, l) = Format.fprintf ppf "%+d %a " c opb_lit l

let to_opb ppf f =
  Format.fprintf ppf "* #variable= %d #constraint= %d\n" (Formula.num_vars f)
    (Formula.num_clauses f + Formula.num_pbs f);
  (match Formula.objective f with
  | None -> ()
  | Some terms ->
    Format.fprintf ppf "min: ";
    List.iter (opb_term ppf) terms;
    Format.fprintf ppf ";\n");
  Formula.iter_clauses
    (fun c ->
      Clause.iter (fun l -> opb_term ppf (1, l)) c;
      Format.fprintf ppf ">= 1 ;\n")
    f;
  Formula.iter_pbs
    (fun pb ->
      Array.iteri
        (fun i l -> opb_term ppf (pb.Pbc.coefs.(i), l))
        pb.Pbc.lits;
      Format.fprintf ppf ">= %d ;\n" pb.Pbc.bound)
    f

let with_buffer emit f =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  emit ppf f;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let dimacs_cnf_string f = with_buffer to_dimacs_cnf f
let opb_string f = with_buffer to_opb f

let parse_opb text =
  let f = Formula.create () in
  let ensure_vars n =
    while Formula.num_vars f < n do
      ignore (Formula.fresh_var f)
    done
  in
  let parse_literal tok =
    let negated = String.length tok > 0 && tok.[0] = '~' in
    let tok = if negated then String.sub tok 1 (String.length tok - 1) else tok in
    if String.length tok < 2 || tok.[0] <> 'x' then
      failwith ("parse_opb: bad literal " ^ tok);
    match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
    | Some i when i >= 1 ->
      ensure_vars i;
      if negated then Lit.neg (i - 1) else Lit.pos (i - 1)
    | _ -> failwith ("parse_opb: bad literal " ^ tok)
  in
  (* a statement is everything up to ';' *)
  let handle_statement stmt =
    let stmt = String.trim stmt in
    if stmt = "" then ()
    else begin
      let is_objective =
        String.length stmt >= 4 && String.sub stmt 0 4 = "min:"
      in
      let body =
        if is_objective then String.sub stmt 4 (String.length stmt - 4)
        else stmt
      in
      let tokens =
        String.split_on_char ' ' body
        |> List.concat_map (String.split_on_char '\t')
        |> List.concat_map (String.split_on_char '\n')
        |> List.filter (( <> ) "")
      in
      (* split off the relation and bound for constraints *)
      let rec split_relation acc = function
        | [ rel; bound ] when rel = ">=" || rel = "<=" || rel = "=" ->
          (List.rev acc, Some (rel, bound))
        | tok :: rest -> split_relation (tok :: acc) rest
        | [] -> (List.rev acc, None)
      in
      let term_tokens, relation =
        if is_objective then (tokens, None) else split_relation [] tokens
      in
      let rec parse_terms acc = function
        | [] -> List.rev acc
        | coef :: lit :: rest -> (
          match int_of_string_opt coef with
          | Some c -> parse_terms ((c, parse_literal lit) :: acc) rest
          | None -> failwith ("parse_opb: bad coefficient " ^ coef))
        | [ tok ] -> failwith ("parse_opb: dangling token " ^ tok)
      in
      let terms = parse_terms [] term_tokens in
      if is_objective then Formula.set_objective_min f terms
      else
        match relation with
        | Some (">=", b) -> (
          match int_of_string_opt b with
          | Some b -> Formula.add_pb_ge f terms b
          | None -> failwith "parse_opb: bad bound")
        | Some ("<=", b) -> (
          match int_of_string_opt b with
          | Some b -> Formula.add_pb_le f terms b
          | None -> failwith "parse_opb: bad bound")
        | Some ("=", b) -> (
          match int_of_string_opt b with
          | Some b -> Formula.add_pb_eq f terms b
          | None -> failwith "parse_opb: bad bound")
        | _ -> failwith "parse_opb: missing relation"
    end
  in
  (* strip comment lines, then split on ';' *)
  let code =
    String.split_on_char '\n' text
    |> List.filter (fun line ->
           let line = String.trim line in
           line = "" || line.[0] <> '*')
    |> String.concat "\n"
  in
  String.split_on_char ';' code |> List.iter handle_statement;
  f

let parse_dimacs_cnf text =
  let f = Formula.create () in
  let lines = String.split_on_char '\n' text in
  let declared = ref None in
  let pending = ref [] in
  let ensure_vars n =
    while Formula.num_vars f < n do
      ignore (Formula.fresh_var f)
    done
  in
  let handle_int i =
    if i = 0 then begin
      Formula.add_clause f (List.rev !pending);
      pending := []
    end
    else begin
      ensure_vars (abs i);
      pending := Lit.of_dimacs i :: !pending
    end
  in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = 'c' then ()
      else if line.[0] = 'p' then begin
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "p"; "cnf"; nv; nc ] -> (
          match (int_of_string_opt nv, int_of_string_opt nc) with
          | Some nv, Some nc ->
            declared := Some (nv, nc);
            ensure_vars nv
          | _ -> failwith "parse_dimacs_cnf: malformed problem line")
        | _ -> failwith "parse_dimacs_cnf: malformed problem line"
      end
      else
        String.split_on_char ' ' line
        |> List.filter (( <> ) "")
        |> List.iter (fun tok ->
               match int_of_string_opt tok with
               | Some i -> handle_int i
               | None -> failwith "parse_dimacs_cnf: malformed literal"))
    lines;
  if !pending <> [] then failwith "parse_dimacs_cnf: unterminated clause";
  if !declared = None then failwith "parse_dimacs_cnf: missing problem line";
  f
