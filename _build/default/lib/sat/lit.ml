type t = int

let make v sign =
  assert (v >= 0);
  if sign then 2 * v else (2 * v) + 1

let pos v = make v true
let neg v = make v false
let var l = l lsr 1
let sign l = l land 1 = 0
let negate l = l lxor 1
let to_index l = l

let of_index i =
  assert (i >= 0);
  i

let to_dimacs l = if sign l then var l + 1 else -(var l + 1)

let of_dimacs i =
  assert (i <> 0);
  if i > 0 then pos (i - 1) else neg (-i - 1)

let compare = Int.compare
let equal = Int.equal
let pp ppf l = Format.fprintf ppf "%s%d" (if sign l then "" else "-") (var l + 1)
