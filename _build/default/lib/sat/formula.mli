(** Mixed CNF + pseudo-Boolean formulas with an optional linear objective.

    This is the input format of the 0-1 ILP solvers (PBS / Galena / Pueblo
    style): a conjunction of CNF clauses and normalized PB constraints,
    optionally together with a linear objective function to minimize. *)

type t

val create : unit -> t

val fresh_var : ?name:string -> t -> int
(** Allocate a new variable. [name] is kept for diagnostics. *)

val fresh_vars : ?prefix:string -> t -> int -> int array
(** [fresh_vars f n] allocates [n] fresh variables, named [prefix ^ index]. *)

val num_vars : t -> int
val num_clauses : t -> int
val num_pbs : t -> int

val name_of_var : t -> int -> string
(** The name given at allocation, or ["x<i+1>"] if none. *)

val add_clause : t -> Lit.t list -> unit
(** Add a clause. Tautologies are dropped silently; an empty clause marks the
    formula as trivially unsatisfiable (see {!trivially_unsat}). *)

val add_pb : t -> Pbc.norm -> unit
(** Add a normalized PB constraint. [Clause] normal forms are routed to the
    clause database; [True] is dropped; [False] marks the formula
    unsatisfiable. *)

val add_pb_ge : t -> (int * Lit.t) list -> int -> unit
val add_pb_le : t -> (int * Lit.t) list -> int -> unit
val add_pb_eq : t -> (int * Lit.t) list -> int -> unit
val add_exactly_one : t -> Lit.t list -> unit

val set_objective_min : t -> (int * Lit.t) list -> unit
(** Set the objective to [MIN sum terms]. Raises [Invalid_argument] if an
    objective is already set. *)

val objective : t -> (int * Lit.t) list option
val trivially_unsat : t -> bool

val clauses : t -> Clause.t list
(** Clauses in insertion order. *)

val pbs : t -> Pbc.t list
(** PB constraints in insertion order. *)

val iter_clauses : (Clause.t -> unit) -> t -> unit
val iter_pbs : (Pbc.t -> unit) -> t -> unit

val objective_value : t -> (Lit.t -> bool) -> int
(** Evaluate the objective under a total assignment; 0 if no objective. *)

val check_model : t -> (Lit.t -> bool) -> bool
(** [check_model f value] is [true] iff the total assignment satisfies every
    clause and every PB constraint. *)

type stats = {
  vars : int;
  cnf_clauses : int;
  pb_constraints : int;
  cnf_literals : int;  (** total literal occurrences in clauses *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
