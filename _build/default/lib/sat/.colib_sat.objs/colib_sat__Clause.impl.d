lib/sat/clause.ml: Array Format List Lit
