lib/sat/pbc.mli: Format Lit
