lib/sat/output.mli: Format Formula
