lib/sat/formula.mli: Clause Format Lit Pbc
