lib/sat/formula.ml: Array Clause Format Hashtbl List Lit Option Pbc Printf
