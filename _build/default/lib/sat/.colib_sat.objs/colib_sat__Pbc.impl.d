lib/sat/pbc.ml: Array Format Hashtbl List Lit
