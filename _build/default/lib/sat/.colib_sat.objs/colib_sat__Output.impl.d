lib/sat/output.ml: Array Buffer Clause Format Formula List Lit Pbc String
