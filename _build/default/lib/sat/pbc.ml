type t = {
  coefs : int array;
  lits : Lit.t array;
  bound : int;
}

type norm =
  | True
  | False
  | Clause of Lit.t list
  | Pb of t

(* Fold arbitrary terms into per-variable net coefficients on the positive
   literal, then rewrite negatives using [c*x = c - c*(not x)]. *)
let normalize terms bound =
  let acc = Hashtbl.create (List.length terms) in
  let add_var v c =
    let prev = try Hashtbl.find acc v with Not_found -> 0 in
    Hashtbl.replace acc v (prev + c)
  in
  List.iter
    (fun (c, l) ->
      if Lit.sign l then add_var (Lit.var l) c
      else add_var (Lit.var l) (-c))
    terms;
  (* [sum_neg] collects constants shifted to the right-hand side when a
     negative-coefficient positive literal is rewritten as a negative
     literal. not-sign terms contributed [c * not x = c - c * x], handled by
     the sign flip above plus this bound shift. *)
  let bound_shift =
    List.fold_left
      (fun s (c, l) -> if Lit.sign l then s else s + c)
      0 terms
  in
  let bound = bound - bound_shift in
  let pos_terms = ref [] in
  let bound = ref bound in
  Hashtbl.iter
    (fun v c ->
      if c > 0 then pos_terms := (c, Lit.pos v) :: !pos_terms
      else if c < 0 then begin
        (* c*x >= ... with c<0: c*x = c + (-c)*(not x) *)
        pos_terms := (-c, Lit.neg v) :: !pos_terms;
        bound := !bound - c
      end)
    acc;
  (!pos_terms, !bound)

let build terms bound =
  if bound <= 0 then True
  else begin
    let total = List.fold_left (fun s (c, _) -> s + c) 0 terms in
    if total < bound then False
    else begin
      (* saturate coefficients at the bound *)
      let terms = List.map (fun (c, l) -> (min c bound, l)) terms in
      if List.for_all (fun (c, _) -> c = bound) terms then
        Clause (List.sort Lit.compare (List.map snd terms))
      else begin
        let terms =
          List.sort (fun (_, a) (_, b) -> Lit.compare a b) terms
        in
        let coefs = Array.of_list (List.map fst terms) in
        let lits = Array.of_list (List.map snd terms) in
        Pb { coefs; lits; bound }
      end
    end
  end

let make_ge terms bound =
  let terms, bound = normalize terms bound in
  build terms bound

let make_le terms bound =
  (* sum <= b  <=>  -sum >= -b *)
  make_ge (List.map (fun (c, l) -> (-c, l)) terms) (-bound)

let make_eq terms bound = [ make_ge terms bound; make_le terms bound ]
let at_most k lits = make_le (List.map (fun l -> (1, l)) lits) k
let at_least k lits = make_ge (List.map (fun l -> (1, l)) lits) k
let arity c = Array.length c.lits
let is_cardinality c = Array.for_all (fun a -> a = 1) c.coefs
let slack_full c = Array.fold_left ( + ) 0 c.coefs - c.bound

let satisfied_by value c =
  let sum = ref 0 in
  Array.iteri
    (fun i l -> if value l then sum := !sum + c.coefs.(i))
    c.lits;
  !sum >= c.bound

let equal a b =
  a.bound = b.bound
  && Array.length a.lits = Array.length b.lits
  && Array.for_all2 Lit.equal a.lits b.lits
  && a.coefs = b.coefs

let pp ppf c =
  Array.iteri
    (fun i l ->
      Format.fprintf ppf "%s%d %a "
        (if i = 0 then "" else "+ ")
        c.coefs.(i) Lit.pp l)
    c.lits;
  Format.fprintf ppf ">= %d" c.bound
