(** Emitters for standard solver interchange formats.

    [to_dimacs_cnf] writes the pure-CNF part of a formula in DIMACS CNF
    format (the input of black-box SAT solvers such as Chaff); it fails when
    the formula has PB constraints or an objective, because DIMACS CNF cannot
    express them. [to_opb] writes the full mixed formula in OPB format (the
    pseudo-Boolean competition format accepted by PBS-style solvers). *)

val to_dimacs_cnf : Format.formatter -> Formula.t -> unit
(** Raises [Invalid_argument] when the formula has PB constraints or an
    objective function. *)

val to_opb : Format.formatter -> Formula.t -> unit
(** Write clauses and PB constraints (and the objective, if any) in OPB
    format. Clauses are written as [>= 1] cardinality constraints. *)

val dimacs_cnf_string : Formula.t -> string
val opb_string : Formula.t -> string

val parse_dimacs_cnf : string -> Formula.t
(** Parse DIMACS CNF text. Raises [Failure] on malformed input. *)

val parse_opb : string -> Formula.t
(** Parse OPB text (the pseudo-Boolean competition subset emitted by
    {!to_opb}: an optional [min:] objective followed by [>=] / [<=] / [=]
    constraints over [x<i>] / [~x<i>] literals). Raises [Failure] on
    malformed input. [to_opb] followed by [parse_opb] reproduces an
    equivalent formula. *)
