type t = Lit.t array

type norm =
  | Clause of t
  | Tautology
  | Empty

let make lits =
  let sorted = List.sort_uniq Lit.compare lits in
  let rec tautological = function
    | a :: (b :: _ as rest) ->
      (Lit.var a = Lit.var b && Lit.sign a <> Lit.sign b) || tautological rest
    | [ _ ] | [] -> false
  in
  match sorted with
  | [] -> Empty
  | _ when tautological sorted -> Tautology
  | _ -> Clause (Array.of_list sorted)

let of_array_unchecked a = a
let lits c = c
let length = Array.length
let mem l c = Array.exists (Lit.equal l) c
let fold f acc c = Array.fold_left f acc c
let iter = Array.iter
let to_list = Array.to_list

let equal a b =
  Array.length a = Array.length b && Array.for_all2 Lit.equal a b

let pp ppf c =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_seq ~pp_sep:(fun ppf () -> Format.fprintf ppf " | ") Lit.pp)
    (Array.to_seq c)
