bin/gen.mli:
