bin/gen.ml: Arg Cmd Cmdliner Colib_graph Lazy List Printf String Term
