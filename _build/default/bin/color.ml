(* Command-line exact graph coloring over DIMACS .col files.

   Subcommands:
     solve  — run the full symmetry-breaking flow and report the optimum
     bounds — clique / DSATUR bounds only (no search)
     emit   — write the 0-1 ILP reduction (OPB format) to stdout *)

open Cmdliner

module Graph = Colib_graph.Graph
module Dimacs_col = Colib_graph.Dimacs_col
module Clique = Colib_graph.Clique
module Dsatur = Colib_graph.Dsatur
module Encoding = Colib_encode.Encoding
module Sbp = Colib_encode.Sbp
module Output = Colib_sat.Output
module Types = Colib_solver.Types
module Flow = Colib_core.Flow
module Exact = Colib_core.Exact_coloring

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"DIMACS .col graph file.")

let engine_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "pbs2" | "pbsii" | "pbs-ii" -> Ok Types.Pbs2
    | "pbs" | "pbs1" -> Ok Types.Pbs1
    | "galena" -> Ok Types.Galena
    | "pueblo" -> Ok Types.Pueblo
    | "cplex" | "bnb" -> Ok Types.Cplex
    | _ -> Error (`Msg (Printf.sprintf "unknown engine %S" s))
  in
  Arg.conv (parse, fun ppf e -> Format.fprintf ppf "%s" (Types.engine_name e))

let engine_arg =
  Arg.(
    value
    & opt engine_conv Types.Pbs2
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:"Solver engine: pbs2, galena, pueblo, cplex (generic B\\&B), pbs.")

let sbp_conv =
  let parse s =
    try Ok (Sbp.of_name s) with Invalid_argument m -> Error (`Msg m)
  in
  Arg.conv (parse, fun ppf c -> Format.fprintf ppf "%s" (Sbp.name c))

let sbp_arg =
  Arg.(
    value
    & opt sbp_conv Sbp.No_sbp
    & info [ "sbp" ] ~docv:"SBP"
        ~doc:
          "Instance-independent SBP construction: none, nu, ca, li, sc, \
           nu+sc.")

let no_isd_arg =
  Arg.(
    value & flag
    & info [ "no-instance-dependent" ]
        ~doc:"Disable detection and breaking of instance-dependent symmetries.")

let timeout_arg =
  Arg.(
    value
    & opt float 60.0
    & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Solving budget in seconds.")

let k_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "k" ] ~docv:"K"
        ~doc:
          "Color limit for the encoding (default: the heuristic upper \
           bound).")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the coloring.")

let load file =
  try Dimacs_col.parse_file file
  with Failure msg ->
    Printf.eprintf "color: %s\n" msg;
    exit 1

let solve_cmd =
  let run file engine sbp no_isd timeout k verbose =
    let g = load file in
    Printf.printf "graph: %d vertices, %d edges\n" (Graph.num_vertices g)
      (Graph.num_edges g);
    let lower = Array.length (Clique.greedy g) in
    let upper = Dsatur.upper_bound g in
    Printf.printf "bounds: clique >= %d, heuristic <= %d\n" lower upper;
    let k = match k with Some k -> k | None -> upper in
    let cfg =
      Flow.config ~engine ~sbp ~instance_dependent:(not no_isd) ~timeout ~k ()
    in
    let r = Flow.run g cfg in
    (match r.Flow.sym with
    | Some si ->
      Printf.printf
        "symmetries: %s (|generators| = %d, detected in %.2fs%s)\n"
        (Colib_symmetry.Auto.order_string si.Flow.order_log10)
        si.Flow.num_generators si.Flow.detection_time
        (if si.Flow.complete then "" else ", budget hit")
    | None -> ());
    (match r.Flow.outcome with
    | Flow.Optimal c -> Printf.printf "chromatic number (within K=%d): %d\n" k c
    | Flow.Best c ->
      Printf.printf "best coloring found: %d colors (optimality unproven)\n" c
    | Flow.No_coloring -> Printf.printf "not %d-colorable\n" k
    | Flow.Timed_out -> Printf.printf "timeout with no coloring found\n");
    Printf.printf "solve time: %.2fs, conflicts: %d, decisions: %d\n"
      r.Flow.solve_time r.Flow.solver.Types.conflicts
      r.Flow.solver.Types.decisions;
    if verbose then
      match r.Flow.coloring with
      | Some coloring ->
        Array.iteri
          (fun v c -> Printf.printf "  vertex %d -> color %d\n" (v + 1) c)
          coloring
      | None -> ()
  in
  Cmd.v (Cmd.info "solve" ~doc:"Solve exact coloring with symmetry breaking.")
    Term.(
      const run $ file_arg $ engine_arg $ sbp_arg $ no_isd_arg $ timeout_arg
      $ k_arg $ verbose_arg)

let bounds_cmd =
  let run file =
    let g = load file in
    let clique = Clique.greedy g in
    let coloring = Dsatur.dsatur g in
    Printf.printf "vertices: %d\nedges: %d\nmax degree: %d\n"
      (Graph.num_vertices g) (Graph.num_edges g) (Graph.max_degree g);
    Printf.printf "greedy clique (lower bound): %d\n" (Array.length clique);
    Printf.printf "DSATUR (upper bound): %d\n" (Dsatur.num_colors coloring);
    Printf.printf "Welsh-Powell: %d\n"
      (Dsatur.num_colors (Dsatur.welsh_powell g))
  in
  Cmd.v (Cmd.info "bounds" ~doc:"Print clique and heuristic coloring bounds.")
    Term.(const run $ file_arg)

let emit_cmd =
  let run file sbp k =
    let g = load file in
    let k = match k with Some k -> k | None -> Dsatur.upper_bound g in
    let enc = Encoding.encode g ~k in
    Sbp.add sbp enc;
    Output.to_opb Format.std_formatter enc.Encoding.formula;
    Format.pp_print_flush Format.std_formatter ()
  in
  Cmd.v
    (Cmd.info "emit"
       ~doc:
         "Emit the 0-1 ILP reduction (OPB format) for use with external \
          solvers.")
    Term.(const run $ file_arg $ sbp_arg $ k_arg)

let solve_opb_cmd =
  let run file engine timeout =
    let text =
      let ic = open_in file in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      s
    in
    let f =
      try Output.parse_opb text
      with Failure msg ->
        Printf.eprintf "color: %s\n" msg;
        exit 1
    in
    let stats = Colib_sat.Formula.stats f in
    Format.printf "%a@." Colib_sat.Formula.pp_stats stats;
    Format.print_flush ();
    let budget = Types.within_seconds timeout in
    match Colib_solver.Optimize.solve_formula engine f budget with
    | Colib_solver.Optimize.Optimal (m, c) ->
      if Colib_sat.Formula.objective f = None then
        Printf.printf "satisfiable\n"
      else Printf.printf "optimal objective: %d\n" c;
      Array.iteri
        (fun v b -> if b then Printf.printf "x%d " (v + 1))
        m;
      print_newline ()
    | Colib_solver.Optimize.Satisfiable (_, c) ->
      Printf.printf "feasible with objective %d (optimality unproven)\n" c
    | Colib_solver.Optimize.Unsatisfiable -> Printf.printf "unsatisfiable\n"
    | Colib_solver.Optimize.Timeout -> Printf.printf "timeout\n"
  in
  Cmd.v
    (Cmd.info "solve-opb"
       ~doc:"Solve a pseudo-Boolean (OPB) instance directly — the repository \
             doubles as a small 0-1 ILP solver.")
    Term.(const run $ file_arg $ engine_arg $ timeout_arg)

let () =
  let doc = "exact graph coloring via 0-1 ILP with symmetry breaking" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "color" ~doc)
          [ solve_cmd; bounds_cmd; emit_cmd; solve_opb_cmd ]))
