bin/color.mli:
