bin/color.ml: Arg Array Cmd Cmdliner Colib_core Colib_encode Colib_graph Colib_sat Colib_solver Colib_symmetry Format Printf String Term
