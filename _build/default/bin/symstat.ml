(* Symmetry statistics for a coloring instance: formula sizes and residual
   symmetry group under each instance-independent SBP construction — the
   per-instance view of Table 2. *)

open Cmdliner
module Graph = Colib_graph.Graph
module Dimacs_col = Colib_graph.Dimacs_col
module Sbp = Colib_encode.Sbp
module Flow = Colib_core.Flow
module Auto = Colib_symmetry.Auto

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"DIMACS .col graph file.")

let k_arg =
  Arg.(value & opt int 20 & info [ "k" ] ~docv:"K" ~doc:"Color limit.")

let budget_arg =
  Arg.(
    value & opt int 200_000
    & info [ "node-budget" ] ~docv:"N" ~doc:"Automorphism search node budget.")

let run file k budget =
  let g = Dimacs_col.parse_file file in
  Printf.printf "%d vertices, %d edges, K = %d\n\n" (Graph.num_vertices g)
    (Graph.num_edges g) k;
  Printf.printf "%-9s %9s %9s %6s %14s %6s %9s\n" "SBP" "#vars" "#clauses"
    "#PB" "#symmetries" "#gen" "time";
  List.iter
    (fun sbp ->
      let si, st = Flow.symmetry_stats ~node_budget:budget g ~k ~sbp in
      Printf.printf "%-9s %9d %9d %6d %14s %6d %8.2fs%s\n" (Sbp.name sbp)
        st.Colib_sat.Formula.vars st.Colib_sat.Formula.cnf_clauses
        st.Colib_sat.Formula.pb_constraints
        (Auto.order_string si.Flow.order_log10)
        si.Flow.num_generators si.Flow.detection_time
        (if si.Flow.complete then "" else " (budget hit)"))
    Sbp.all

let () =
  let doc = "residual-symmetry statistics per SBP construction" in
  exit
    (Cmd.eval
       (Cmd.v (Cmd.info "symstat" ~doc)
          Term.(const run $ file_arg $ k_arg $ budget_arg)))
