bin/symstat.mli:
