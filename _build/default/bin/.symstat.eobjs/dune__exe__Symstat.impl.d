bin/symstat.ml: Arg Cmd Cmdliner Colib_core Colib_encode Colib_graph Colib_sat Colib_symmetry List Printf Term
