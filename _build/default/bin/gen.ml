(* Benchmark instance generator: writes DIMACS .col files for the graph
   families used in the paper's evaluation, including the 20 reconstructed
   Table 1 instances. *)

open Cmdliner
module Generators = Colib_graph.Generators
module Benchmarks = Colib_graph.Benchmarks
module Dimacs_col = Colib_graph.Dimacs_col

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (default stdout).")

let emit out ?comment g =
  match out with
  | None -> print_string (Dimacs_col.to_string ?comment g)
  | Some path ->
    Dimacs_col.write_file path ?comment g;
    Printf.eprintf "wrote %s\n" path

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let queens_cmd =
  let rows = Arg.(required & pos 0 (some int) None & info [] ~docv:"ROWS") in
  let cols = Arg.(required & pos 1 (some int) None & info [] ~docv:"COLS") in
  let run rows cols out =
    emit out
      ~comment:(Printf.sprintf "queens %dx%d" rows cols)
      (Generators.queens ~rows ~cols)
  in
  Cmd.v (Cmd.info "queens" ~doc:"n-queens graph.")
    Term.(const run $ rows $ cols $ out_arg)

let mycielski_cmd =
  let k = Arg.(required & pos 0 (some int) None & info [] ~docv:"K") in
  let run k out =
    emit out ~comment:(Printf.sprintf "myciel%d" k) (Generators.mycielski k)
  in
  Cmd.v (Cmd.info "mycielski" ~doc:"Mycielski graph (DIMACS mycielK).")
    Term.(const run $ k $ out_arg)

let gnm_cmd =
  let n = Arg.(required & pos 0 (some int) None & info [] ~docv:"N") in
  let m = Arg.(required & pos 1 (some int) None & info [] ~docv:"M") in
  let run n m seed out =
    emit out
      ~comment:(Printf.sprintf "G(n=%d, m=%d) seed=%d" n m seed)
      (Generators.gnm ~n ~m ~seed)
  in
  Cmd.v (Cmd.info "gnm" ~doc:"Uniform random graph with exactly M edges.")
    Term.(const run $ n $ m $ seed_arg $ out_arg)

let register_cmd =
  let n = Arg.(required & pos 0 (some int) None & info [] ~docv:"N") in
  let m = Arg.(required & pos 1 (some int) None & info [] ~docv:"M") in
  let chi =
    Arg.(
      required & pos 2 (some int) None
      & info [] ~docv:"CHI" ~doc:"Planted chromatic number.")
  in
  let run n m chi seed out =
    emit out
      ~comment:(Printf.sprintf "register-allocation model chi=%d" chi)
      (Generators.split_register ~n ~m ~clique:chi ~seed)
  in
  Cmd.v
    (Cmd.info "register" ~doc:"Register-allocation interference graph model.")
    Term.(const run $ n $ m $ chi $ seed_arg $ out_arg)

let benchmark_cmd =
  let name_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"NAME" ~doc:"Table 1 instance name, e.g. anna.")
  in
  let run name out =
    match Benchmarks.find name with
    | b ->
      emit out ~comment:(name ^ " (reconstructed)") (Lazy.force b.Benchmarks.graph)
    | exception Not_found ->
      Printf.eprintf "unknown benchmark %S; known: %s\n" name
        (String.concat ", "
           (List.map (fun b -> b.Benchmarks.name) Benchmarks.all));
      exit 1
  in
  Cmd.v
    (Cmd.info "benchmark" ~doc:"One of the 20 reconstructed Table 1 instances.")
    Term.(const run $ name_arg $ out_arg)

let list_cmd =
  let run () =
    List.iter
      (fun b ->
        let g = Lazy.force b.Benchmarks.graph in
        Printf.printf "%-12s %-10s V=%-4d E=%-6d chi%s\n" b.Benchmarks.name
          (Benchmarks.family_name b.Benchmarks.family)
          (Colib_graph.Graph.num_vertices g)
          (Colib_graph.Graph.num_edges g)
          (match b.Benchmarks.paper_chromatic with
          | Some c -> Printf.sprintf "=%d" c
          | None -> ">20"))
      Benchmarks.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the benchmark suite.") Term.(const run $ const ())

let () =
  let doc = "graph-coloring benchmark generator" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "gen" ~doc)
          [ queens_cmd; mycielski_cmd; gnm_cmd; register_cmd; benchmark_cmd;
            list_cmd ]))
