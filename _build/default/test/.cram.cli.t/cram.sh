  $ ../../bin/gen.exe queens 4 4 -o q44.col
  $ head -2 q44.col
  $ ../../bin/color.exe bounds q44.col
  $ ../../bin/gen.exe mycielski 4 | head -2
  $ ../../bin/gen.exe list | wc -l
  $ ../../bin/gen.exe list | grep queen
  $ ../../bin/color.exe emit q44.col -k 5 | head -1
  $ echo "e 1 2" > broken.col
  $ ../../bin/color.exe bounds broken.col
  $ ../../bin/gen.exe benchmark nosuch 2>&1 | head -1
