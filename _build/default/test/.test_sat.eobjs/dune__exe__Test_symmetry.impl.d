test/test_symmetry.ml: Alcotest Array Colib_encode Colib_graph Colib_sat Colib_solver Colib_symmetry Format Int List Printf QCheck QCheck_alcotest
