test/test_graph.ml: Alcotest Array Colib_graph Lazy List Printf QCheck QCheck_alcotest String
