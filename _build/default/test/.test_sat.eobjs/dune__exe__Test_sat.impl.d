test/test_sat.ml: Alcotest Array Colib_sat Format List QCheck QCheck_alcotest String
