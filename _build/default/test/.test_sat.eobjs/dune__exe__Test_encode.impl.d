test/test_encode.ml: Alcotest Array Colib_encode Colib_graph Colib_sat Colib_solver Colib_symmetry Format List Printf QCheck QCheck_alcotest
