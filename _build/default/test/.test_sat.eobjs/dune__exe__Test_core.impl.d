test/test_core.ml: Alcotest Colib_core Colib_encode Colib_graph Colib_sat Colib_solver Lazy List Printf QCheck QCheck_alcotest
