test/test_solver.ml: Alcotest Array Colib_graph Colib_sat Colib_solver Format Int List Printf QCheck QCheck_alcotest String
