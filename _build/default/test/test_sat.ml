(* Tests for the CNF/PB formula substrate: literals, clauses, normalized PB
   constraints, formulas, and the DIMACS/OPB emitters. *)

module Lit = Colib_sat.Lit
module Clause = Colib_sat.Clause
module Pbc = Colib_sat.Pbc
module Formula = Colib_sat.Formula
module Output = Colib_sat.Output

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ---------- literals ---------- *)

let test_lit_roundtrip () =
  for v = 0 to 20 do
    let p = Lit.pos v and n = Lit.neg v in
    check Alcotest.int "var pos" v (Lit.var p);
    check Alcotest.int "var neg" v (Lit.var n);
    check Alcotest.bool "sign pos" true (Lit.sign p);
    check Alcotest.bool "sign neg" false (Lit.sign n);
    check Alcotest.bool "negate" true (Lit.equal (Lit.negate p) n);
    check Alcotest.bool "negate2" true (Lit.equal (Lit.negate n) p);
    check Alcotest.int "dimacs pos" (v + 1) (Lit.to_dimacs p);
    check Alcotest.int "dimacs neg" (-(v + 1)) (Lit.to_dimacs n);
    check Alcotest.bool "dimacs rt" true
      (Lit.equal p (Lit.of_dimacs (Lit.to_dimacs p)));
    check Alcotest.bool "index rt" true
      (Lit.equal n (Lit.of_index (Lit.to_index n)))
  done

let lit_gen = QCheck.Gen.(map (fun i -> Lit.of_index i) (int_bound 199))
let lit_arb = QCheck.make ~print:(fun l -> Format.asprintf "%a" Lit.pp l) lit_gen

let prop_negate_involution =
  QCheck.Test.make ~name:"negate involutive" ~count:200 lit_arb (fun l ->
      Lit.equal l (Lit.negate (Lit.negate l)))

let prop_negate_flips_sign =
  QCheck.Test.make ~name:"negate flips sign" ~count:200 lit_arb (fun l ->
      Lit.sign l <> Lit.sign (Lit.negate l) && Lit.var l = Lit.var (Lit.negate l))

(* ---------- clauses ---------- *)

let test_clause_normalization () =
  (match Clause.make [ Lit.pos 1; Lit.pos 0; Lit.pos 1 ] with
  | Clause.Clause c ->
    check Alcotest.int "dedup" 2 (Clause.length c);
    check Alcotest.bool "sorted" true (Clause.mem (Lit.pos 0) c)
  | _ -> Alcotest.fail "expected clause");
  (match Clause.make [ Lit.pos 0; Lit.neg 0 ] with
  | Clause.Tautology -> ()
  | _ -> Alcotest.fail "expected tautology");
  match Clause.make [] with
  | Clause.Empty -> ()
  | _ -> Alcotest.fail "expected empty"

let test_clause_tautology_mixed () =
  match Clause.make [ Lit.pos 3; Lit.pos 1; Lit.neg 3; Lit.pos 2 ] with
  | Clause.Tautology -> ()
  | _ -> Alcotest.fail "tautology not detected"

(* ---------- PB constraints ---------- *)

let test_pb_ge_basic () =
  match Pbc.make_ge [ (1, Lit.pos 0); (2, Lit.pos 1) ] 2 with
  | Pbc.Pb c ->
    check Alcotest.int "bound" 2 c.Pbc.bound;
    check Alcotest.int "arity" 2 (Array.length c.Pbc.lits)
  | _ -> Alcotest.fail "expected Pb"

let test_pb_trivial_true () =
  (match Pbc.make_ge [ (1, Lit.pos 0) ] 0 with
  | Pbc.True -> ()
  | _ -> Alcotest.fail "bound 0 should be trivially true");
  match Pbc.make_ge [ (3, Lit.pos 0) ] (-1) with
  | Pbc.True -> ()
  | _ -> Alcotest.fail "negative bound should be trivially true"

let test_pb_trivial_false () =
  match Pbc.make_ge [ (1, Lit.pos 0); (1, Lit.pos 1) ] 3 with
  | Pbc.False -> ()
  | _ -> Alcotest.fail "unreachable bound should be false"

let test_pb_becomes_clause () =
  match Pbc.make_ge [ (5, Lit.pos 0); (7, Lit.neg 1) ] 5 with
  | Pbc.Clause lits -> check Alcotest.int "clause size" 2 (List.length lits)
  | _ -> Alcotest.fail "saturation should give a clause"

let test_pb_negative_coef () =
  (* x0 - x1 >= 0  <=>  x0 + ~x1 >= 1: a clause *)
  match Pbc.make_ge [ (1, Lit.pos 0); (-1, Lit.pos 1) ] 0 with
  | Pbc.Clause lits ->
    check Alcotest.bool "contains x0" true (List.mem (Lit.pos 0) lits);
    check Alcotest.bool "contains ~x1" true (List.mem (Lit.neg 1) lits)
  | _ -> Alcotest.fail "expected clause from x0 - x1 >= 0"

let test_pb_le () =
  (* x0 + x1 <= 1  <=>  ~x0 + ~x1 >= 1 *)
  match Pbc.make_le [ (1, Lit.pos 0); (1, Lit.pos 1) ] 1 with
  | Pbc.Clause lits ->
    check Alcotest.bool "negated" true
      (List.for_all (fun l -> not (Lit.sign l)) lits)
  | _ -> Alcotest.fail "expected clause"

let test_pb_merge_duplicate () =
  (* x0 + x0 >= 2 should merge to 2*x0 >= 2, i.e. unit clause x0 *)
  match Pbc.make_ge [ (1, Lit.pos 0); (1, Lit.pos 0) ] 2 with
  | Pbc.Clause [ l ] -> check Alcotest.bool "unit x0" true (Lit.equal l (Lit.pos 0))
  | _ -> Alcotest.fail "expected unit clause"

let test_pb_opposite_literals () =
  (* x0 + ~x0 >= 1 is trivially true *)
  match Pbc.make_ge [ (1, Lit.pos 0); (1, Lit.neg 0) ] 1 with
  | Pbc.True -> ()
  | _ -> Alcotest.fail "x + ~x >= 1 should be trivially true"

(* semantics: normalized constraint must agree with direct evaluation *)
let terms_gen =
  QCheck.Gen.(
    list_size (int_range 1 6)
      (pair (int_range (-3) 3) (map Lit.of_index (int_bound 9))))

let terms_print ts =
  String.concat " + "
    (List.map (fun (c, l) -> Format.asprintf "%d*%a" c Lit.pp l) ts)

let eval_ge terms bound assignment =
  let v l = if Lit.sign l then assignment.(Lit.var l) else not assignment.(Lit.var l) in
  List.fold_left (fun s (c, l) -> if v l then s + c else s) 0 terms >= bound

let prop_pb_normalization_semantics =
  QCheck.Test.make ~name:"PB normalization preserves semantics" ~count:500
    (QCheck.make ~print:(fun (ts, b, _) -> terms_print ts ^ " >= " ^ string_of_int b)
       QCheck.Gen.(triple terms_gen (int_range (-5) 8) (array_size (return 5) bool)))
    (fun (terms, bound, assignment) ->
      let direct = eval_ge terms bound assignment in
      let v l =
        if Lit.sign l then assignment.(Lit.var l) else not assignment.(Lit.var l)
      in
      match Pbc.make_ge terms bound with
      | Pbc.True -> direct
      | Pbc.False -> not direct
      | Pbc.Clause lits -> List.exists v lits = direct
      | Pbc.Pb c -> Pbc.satisfied_by v c = direct)

(* ---------- formulas ---------- *)

let test_formula_counting () =
  let f = Formula.create () in
  let xs = Formula.fresh_vars ~prefix:"v" f 4 in
  Formula.add_clause f [ Lit.pos xs.(0); Lit.pos xs.(1) ];
  Formula.add_clause f [ Lit.neg xs.(2) ];
  Formula.add_exactly_one f (Array.to_list (Array.map Lit.pos xs));
  let st = Formula.stats f in
  check Alcotest.int "vars" 4 st.Formula.vars;
  (* exactly-one adds: >=1 clause + at-most-one PB *)
  check Alcotest.int "clauses" 3 st.Formula.cnf_clauses;
  check Alcotest.int "pbs" 1 st.Formula.pb_constraints

let test_formula_tautology_dropped () =
  let f = Formula.create () in
  let v = Formula.fresh_var f in
  Formula.add_clause f [ Lit.pos v; Lit.neg v ];
  check Alcotest.int "tautology dropped" 0 (Formula.num_clauses f)

let test_formula_empty_clause_unsat () =
  let f = Formula.create () in
  Formula.add_clause f [];
  check Alcotest.bool "unsat" true (Formula.trivially_unsat f)

let test_formula_check_model () =
  let f = Formula.create () in
  let a = Formula.fresh_var f and b = Formula.fresh_var f in
  Formula.add_clause f [ Lit.pos a; Lit.pos b ];
  Formula.add_pb_le f [ (1, Lit.pos a); (1, Lit.pos b) ] 1;
  let value model l = if Lit.sign l then model.(Lit.var l) else not model.(Lit.var l) in
  check Alcotest.bool "10 ok" true (Formula.check_model f (value [| true; false |]));
  check Alcotest.bool "11 violates PB" false
    (Formula.check_model f (value [| true; true |]));
  check Alcotest.bool "00 violates clause" false
    (Formula.check_model f (value [| false; false |]))

let test_formula_objective () =
  let f = Formula.create () in
  let xs = Formula.fresh_vars f 3 in
  Formula.set_objective_min f
    (List.map (fun v -> (1, Lit.pos v)) (Array.to_list xs));
  let value model l = if Lit.sign l then model.(Lit.var l) else not model.(Lit.var l) in
  check Alcotest.int "cost" 2
    (Formula.objective_value f (value [| true; false; true |]));
  check Alcotest.bool "double objective rejected" true
    (try
       Formula.set_objective_min f [];
       false
     with Invalid_argument _ -> true)

let test_formula_unallocated_var_rejected () =
  let f = Formula.create () in
  let _ = Formula.fresh_var f in
  check Alcotest.bool "rejects" true
    (try
       Formula.add_clause f [ Lit.pos 5 ];
       false
     with Invalid_argument _ -> true)

let test_formula_names () =
  let f = Formula.create () in
  let a = Formula.fresh_var ~name:"alpha" f in
  let b = Formula.fresh_var f in
  check Alcotest.string "named" "alpha" (Formula.name_of_var f a);
  check Alcotest.string "default" "x2" (Formula.name_of_var f b);
  let vs = Formula.fresh_vars ~prefix:"p" f 2 in
  check Alcotest.string "prefixed" "p1" (Formula.name_of_var f vs.(1))

let test_cardinality_helpers () =
  let lits = [ Lit.pos 0; Lit.pos 1; Lit.pos 2 ] in
  (match Pbc.at_least 2 lits with
  | Pbc.Pb c ->
    check Alcotest.int "bound" 2 c.Pbc.bound;
    check Alcotest.bool "cardinality" true (Pbc.is_cardinality c);
    check Alcotest.int "slack" 1 (Pbc.slack_full c)
  | _ -> Alcotest.fail "expected Pb");
  (match Pbc.at_most 2 lits with
  | Pbc.Clause negs ->
    (* at most 2 of 3 = at least 1 negation: a clause *)
    check Alcotest.int "3 negs" 3 (List.length negs)
  | _ -> Alcotest.fail "expected clause");
  match Pbc.at_least 0 lits with
  | Pbc.True -> ()
  | _ -> Alcotest.fail "at_least 0 is trivial"

(* ---------- output ---------- *)

let test_dimacs_cnf_roundtrip () =
  let f = Formula.create () in
  let xs = Formula.fresh_vars f 4 in
  Formula.add_clause f [ Lit.pos xs.(0); Lit.neg xs.(1) ];
  Formula.add_clause f [ Lit.pos xs.(2); Lit.pos xs.(3); Lit.neg xs.(0) ];
  let text = Output.dimacs_cnf_string f in
  let f' = Output.parse_dimacs_cnf text in
  check Alcotest.int "vars" (Formula.num_vars f) (Formula.num_vars f');
  check Alcotest.int "clauses" (Formula.num_clauses f) (Formula.num_clauses f');
  let text' = Output.dimacs_cnf_string f' in
  check Alcotest.string "fixpoint" text text'

let test_dimacs_rejects_pb () =
  let f = Formula.create () in
  let xs = Formula.fresh_vars f 3 in
  Formula.add_pb_ge f (List.map (fun v -> (1, Lit.pos v)) (Array.to_list xs)) 2;
  check Alcotest.bool "rejects PB" true
    (try
       ignore (Output.dimacs_cnf_string f);
       false
     with Invalid_argument _ -> true)

let test_opb_output () =
  let f = Formula.create () in
  let xs = Formula.fresh_vars f 2 in
  Formula.add_clause f [ Lit.pos xs.(0); Lit.neg xs.(1) ];
  Formula.add_pb_ge f [ (2, Lit.pos xs.(0)); (1, Lit.pos xs.(1)) ] 2;
  Formula.set_objective_min f [ (1, Lit.pos xs.(0)) ];
  let text = Output.opb_string f in
  let contains_sub hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "has min line" true (contains_sub text "min:");
  check Alcotest.bool "has constraint" true (contains_sub text ">= 2")

let test_opb_roundtrip () =
  let f = Formula.create () in
  let xs = Formula.fresh_vars f 4 in
  Formula.add_clause f [ Lit.pos xs.(0); Lit.neg xs.(1) ];
  Formula.add_pb_ge f
    [ (2, Lit.pos xs.(0)); (1, Lit.pos xs.(2)); (3, Lit.neg xs.(3)) ]
    3;
  Formula.set_objective_min f
    [ (1, Lit.pos xs.(2)); (2, Lit.pos xs.(3)) ];
  let f' = Output.parse_opb (Output.opb_string f) in
  check Alcotest.int "vars" (Formula.num_vars f) (Formula.num_vars f');
  check Alcotest.int "clauses" (Formula.num_clauses f) (Formula.num_clauses f');
  check Alcotest.int "pbs" (Formula.num_pbs f) (Formula.num_pbs f');
  check Alcotest.bool "objective survives" true (Formula.objective f' <> None);
  (* semantic equivalence over all 16 assignments *)
  for a = 0 to 15 do
    let value l =
      let b = a land (1 lsl Lit.var l) <> 0 in
      if Lit.sign l then b else not b
    in
    check Alcotest.bool "same models" (Formula.check_model f value)
      (Formula.check_model f' value);
    check Alcotest.int "same cost" (Formula.objective_value f value)
      (Formula.objective_value f' value)
  done

let test_opb_parse_relations () =
  let f = Output.parse_opb "* a comment\n+1 x1 +1 x2 = 1 ;\n+1 x1 <= 0 ;\n" in
  (* x1 + x2 = 1 splits into >=1 clause and at-most-one; x1 <= 0 is the unit
     clause ~x1 *)
  check Alcotest.bool "parses" true (Formula.num_vars f = 2);
  let value model l =
    if Lit.sign l then model.(Lit.var l) else not model.(Lit.var l)
  in
  check Alcotest.bool "01 ok" true (Formula.check_model f (value [| false; true |]));
  check Alcotest.bool "10 violates x1<=0" false
    (Formula.check_model f (value [| true; false |]));
  check Alcotest.bool "00 violates =1" false
    (Formula.check_model f (value [| false; false |]))

let test_opb_malformed () =
  List.iter
    (fun text ->
      check Alcotest.bool ("rejects " ^ text) true
        (try
           ignore (Output.parse_opb text);
           false
         with Failure _ -> true))
    [ "+1 y1 >= 1 ;"; "+1 x1 >= ;"; "x1 >= 1 ;"; "+1 x1 +2 >= 1 ;" ]

let test_parse_malformed () =
  List.iter
    (fun text ->
      check Alcotest.bool ("rejects " ^ text) true
        (try
           ignore (Output.parse_dimacs_cnf text);
           false
         with Failure _ -> true))
    [ "1 2 0\n"; "p cnf x y\n"; "p cnf 2 1\n1 2\n"; "p cnf 2 1\n1 banana 0\n" ]

let () =
  Alcotest.run "sat"
    [
      ( "lit",
        [
          Alcotest.test_case "roundtrips" `Quick test_lit_roundtrip;
          qtest prop_negate_involution;
          qtest prop_negate_flips_sign;
        ] );
      ( "clause",
        [
          Alcotest.test_case "normalization" `Quick test_clause_normalization;
          Alcotest.test_case "tautology mixed" `Quick test_clause_tautology_mixed;
        ] );
      ( "pbc",
        [
          Alcotest.test_case "ge basic" `Quick test_pb_ge_basic;
          Alcotest.test_case "trivially true" `Quick test_pb_trivial_true;
          Alcotest.test_case "trivially false" `Quick test_pb_trivial_false;
          Alcotest.test_case "becomes clause" `Quick test_pb_becomes_clause;
          Alcotest.test_case "negative coef" `Quick test_pb_negative_coef;
          Alcotest.test_case "le" `Quick test_pb_le;
          Alcotest.test_case "merge duplicates" `Quick test_pb_merge_duplicate;
          Alcotest.test_case "opposite literals" `Quick test_pb_opposite_literals;
          qtest prop_pb_normalization_semantics;
        ] );
      ( "formula",
        [
          Alcotest.test_case "counting" `Quick test_formula_counting;
          Alcotest.test_case "tautology dropped" `Quick test_formula_tautology_dropped;
          Alcotest.test_case "empty clause" `Quick test_formula_empty_clause_unsat;
          Alcotest.test_case "check_model" `Quick test_formula_check_model;
          Alcotest.test_case "objective" `Quick test_formula_objective;
          Alcotest.test_case "unallocated var" `Quick test_formula_unallocated_var_rejected;
          Alcotest.test_case "names" `Quick test_formula_names;
          Alcotest.test_case "cardinality helpers" `Quick test_cardinality_helpers;
        ] );
      ( "output",
        [
          Alcotest.test_case "dimacs roundtrip" `Quick test_dimacs_cnf_roundtrip;
          Alcotest.test_case "dimacs rejects PB" `Quick test_dimacs_rejects_pb;
          Alcotest.test_case "opb" `Quick test_opb_output;
          Alcotest.test_case "opb roundtrip" `Quick test_opb_roundtrip;
          Alcotest.test_case "opb relations" `Quick test_opb_parse_relations;
          Alcotest.test_case "opb malformed" `Quick test_opb_malformed;
          Alcotest.test_case "malformed input" `Quick test_parse_malformed;
        ] );
    ]
