(* Tests for the coloring → 0-1 ILP reduction and the instance-independent
   SBP constructions: size formulas from the paper, decode/verify, and the
   central correctness property — no SBP construction changes the optimum. *)

module Graph = Colib_graph.Graph
module Generators = Colib_graph.Generators
module Brute = Colib_graph.Brute
module Encoding = Colib_encode.Encoding
module Sbp = Colib_encode.Sbp
module Formula = Colib_sat.Formula
module Lit = Colib_sat.Lit
module Types = Colib_solver.Types
module Optimize = Colib_solver.Optimize

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let budget = Types.within_seconds 30.0

(* ---------- size formulas (Section 2.5) ---------- *)

let test_encoding_sizes () =
  (* vars = nK + K; CNF clauses = K(m + n + 1); PB constraints: each
     exactly-one contributes one ">= 1" clause (counted as CNF here) and one
     normalized at-most-one PB row, so n PB rows and K(m+n+1) + n clauses. *)
  List.iter
    (fun (n, m, seed, k) ->
      let g = Generators.gnm ~n ~m ~seed in
      let enc = Encoding.encode g ~k in
      let st = Formula.stats enc.Encoding.formula in
      check Alcotest.int "vars" ((n * k) + k) st.Formula.vars;
      check Alcotest.int "pb rows" n st.Formula.pb_constraints;
      check Alcotest.int "clauses"
        ((k * (m + n + 1)) + n)
        st.Formula.cnf_clauses)
    [ (6, 9, 3, 4); (10, 20, 7, 6); (14, 40, 1, 5) ]

let test_encoding_rejects_bad_k () =
  check Alcotest.bool "k=0" true
    (try
       ignore (Encoding.encode (Generators.cycle 3) ~k:0);
       false
     with Invalid_argument _ -> true)

let test_decode_verify () =
  let g = Generators.cycle 5 in
  let enc = Encoding.encode g ~k:4 in
  match Optimize.solve_formula Types.Pbs2 enc.Encoding.formula budget with
  | Optimize.Optimal (m, c) ->
    check Alcotest.int "chi C5" 3 c;
    let coloring = Encoding.decode enc m in
    check Alcotest.bool "proper" true (Graph.is_proper_coloring g coloring);
    check Alcotest.bool "verify" true (Encoding.verify enc m);
    check Alcotest.int "cost" 3 (Encoding.coloring_cost enc m);
    (* failure injection: corrupt the model so two adjacent vertices share a
       color — verify must notice *)
    let bad = Array.copy m in
    let c0 = coloring.(0) in
    bad.(enc.Encoding.x.(1).(coloring.(1))) <- false;
    bad.(enc.Encoding.x.(1).(c0)) <- true;
    check Alcotest.bool "corrupt model rejected" false
      (Encoding.verify enc bad);
    (* a model with a colorless vertex cannot be decoded *)
    let blank = Array.map (fun _ -> false) m in
    check Alcotest.bool "blank model rejected" true
      (try
         ignore (Encoding.decode enc blank);
         false
       with Invalid_argument _ -> true)
  | _ -> Alcotest.fail "expected optimal"

(* ---------- SBP sizes (Section 3) ---------- *)

let test_nu_size () =
  let g = Generators.gnm ~n:8 ~m:12 ~seed:2 in
  let enc = Encoding.encode g ~k:5 in
  let before = Formula.stats enc.Encoding.formula in
  Sbp.add Sbp.Nu enc;
  let after = Formula.stats enc.Encoding.formula in
  check Alcotest.int "K-1 clauses" 4
    (after.Formula.cnf_clauses - before.Formula.cnf_clauses);
  check Alcotest.int "no new vars" 0 (after.Formula.vars - before.Formula.vars);
  check Alcotest.int "no new pb" 0
    (after.Formula.pb_constraints - before.Formula.pb_constraints)

let test_ca_size () =
  let g = Generators.gnm ~n:8 ~m:12 ~seed:2 in
  let enc = Encoding.encode g ~k:5 in
  let before = Formula.stats enc.Encoding.formula in
  Sbp.add Sbp.Ca enc;
  let after = Formula.stats enc.Encoding.formula in
  check Alcotest.int "K-1 pb rows" 4
    (after.Formula.pb_constraints - before.Formula.pb_constraints);
  check Alcotest.int "no new vars" 0 (after.Formula.vars - before.Formula.vars)

let test_li_size () =
  (* the paper's quadratic construction: nK marker variables and
     K(2n + n(n-1)/2 + 1) + n(K-1) clauses *)
  let n = 8 and k = 5 in
  let g = Generators.gnm ~n ~m:12 ~seed:2 in
  let enc = Encoding.encode g ~k in
  let before = Formula.stats enc.Encoding.formula in
  Sbp.add Sbp.Li enc;
  let after = Formula.stats enc.Encoding.formula in
  check Alcotest.int "nK new vars" (n * k)
    (after.Formula.vars - before.Formula.vars);
  check Alcotest.int "clauses"
    ((k * ((2 * n) + (n * (n - 1) / 2) + 1)) + (n * (k - 1)))
    (after.Formula.cnf_clauses - before.Formula.cnf_clauses)

let test_li_prefix_size () =
  (* the linear prefix reformulation: nK variables, 3nK - K definition
     clauses plus (K-1)n ordering clauses *)
  let n = 8 and k = 5 in
  let g = Generators.gnm ~n ~m:12 ~seed:2 in
  let enc = Encoding.encode g ~k in
  let before = Formula.stats enc.Encoding.formula in
  Sbp.add Sbp.Li_prefix enc;
  let after = Formula.stats enc.Encoding.formula in
  check Alcotest.int "nK new vars" (n * k)
    (after.Formula.vars - before.Formula.vars);
  check Alcotest.int "clauses"
    ((3 * n * k) - k + ((k - 1) * n))
    (after.Formula.cnf_clauses - before.Formula.cnf_clauses)

let test_sc_size () =
  let g = Generators.gnm ~n:8 ~m:12 ~seed:2 in
  let enc = Encoding.encode g ~k:5 in
  let before = Formula.stats enc.Encoding.formula in
  Sbp.add Sbp.Sc enc;
  let after = Formula.stats enc.Encoding.formula in
  check Alcotest.int "two unit clauses" 2
    (after.Formula.cnf_clauses - before.Formula.cnf_clauses)

let test_sc_picks_max_degree () =
  (* star: center is the max-degree vertex; it must be pinned to color 0 *)
  let g = Generators.star 5 in
  let enc = Encoding.encode g ~k:3 in
  Sbp.add Sbp.Sc enc;
  match Optimize.solve_formula Types.Pbs2 enc.Encoding.formula budget with
  | Optimize.Optimal (m, 2) ->
    let coloring = Encoding.decode enc m in
    check Alcotest.int "center color 0" 0 coloring.(0)
  | _ -> Alcotest.fail "expected optimal 2"

let test_sbp_names () =
  List.iter
    (fun c -> check Alcotest.bool "roundtrip" true (Sbp.of_name (Sbp.name c) = c))
    [ Sbp.Nu; Sbp.Ca; Sbp.Li; Sbp.Sc; Sbp.Nu_sc ];
  check Alcotest.bool "none" true (Sbp.of_name "none" = Sbp.No_sbp);
  check Alcotest.bool "unknown" true
    (try
       ignore (Sbp.of_name "bogus");
       false
     with Invalid_argument _ -> true)

(* ---------- correctness: SBPs preserve the optimum ---------- *)

let graph_arb =
  QCheck.make
    ~print:(fun (n, m, seed) -> Printf.sprintf "gnm(%d,%d,%d)" n m seed)
    QCheck.Gen.(
      let* n = int_range 3 8 in
      let* m = int_range 0 (n * (n - 1) / 2) in
      let* seed = int_range 0 9999 in
      return (n, m, seed))

let optimum_with sbp g k =
  let enc = Encoding.encode g ~k in
  Sbp.add sbp enc;
  match Optimize.solve_formula Types.Pbs2 enc.Encoding.formula budget with
  | Optimize.Optimal (m, c) ->
    (* any model must still decode to a proper coloring *)
    if not (Encoding.verify enc m) then None else Some c
  | _ -> None

let prop_sbp_preserves_optimum sbp =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s preserves the chromatic number" (Sbp.name sbp))
    ~count:40 graph_arb (fun (n, m, seed) ->
      let g = Generators.gnm ~n ~m ~seed in
      let chi = Brute.chromatic_number g in
      let k = min n (chi + 2) in
      optimum_with sbp g k = Some chi)

let prop_y_first_irrelevant_to_optimum =
  QCheck.Test.make ~name:"variable numbering does not change the optimum"
    ~count:25 graph_arb (fun (n, m, seed) ->
      let g = Generators.gnm ~n ~m ~seed in
      let chi = Brute.chromatic_number g in
      let k = min n (chi + 1) in
      let solve y_first =
        let enc = Encoding.encode ~y_first g ~k in
        match Optimize.solve_formula Types.Pbs2 enc.Encoding.formula budget with
        | Optimize.Optimal (_, c) -> Some c
        | _ -> None
      in
      solve true = Some chi && solve false = Some chi)

(* LI is a complete symmetry breaker: on a graph with trivial automorphisms
   and distinct independent-set sizes it should leave a unique optimal class
   representative; at minimum it must preserve optima, which the property
   above checks. Here we additionally check it composes with NU semantics. *)
let test_li_subsumes_nu () =
  (* with LI, unused colors must be the highest-numbered ones *)
  let g = Generators.path 4 in
  (* chi = 2 *)
  let enc = Encoding.encode g ~k:4 in
  Sbp.add Sbp.Li enc;
  match Optimize.solve_formula Types.Pbs2 enc.Encoding.formula budget with
  | Optimize.Optimal (m, 2) ->
    check Alcotest.bool "y0" true m.(enc.Encoding.y.(0));
    check Alcotest.bool "y1" true m.(enc.Encoding.y.(1));
    check Alcotest.bool "y2 unused" false m.(enc.Encoding.y.(2));
    check Alcotest.bool "y3 unused" false m.(enc.Encoding.y.(3))
  | _ -> Alcotest.fail "expected optimal 2"

let test_nu_order () =
  let g = Generators.cycle 5 in
  (* chi = 3 *)
  let enc = Encoding.encode g ~k:5 in
  Sbp.add Sbp.Nu enc;
  match Optimize.solve_formula Types.Pbs2 enc.Encoding.formula budget with
  | Optimize.Optimal (m, 3) ->
    (* NU: used colors form a prefix *)
    check Alcotest.bool "y0" true m.(enc.Encoding.y.(0));
    check Alcotest.bool "y1" true m.(enc.Encoding.y.(1));
    check Alcotest.bool "y2" true m.(enc.Encoding.y.(2));
    check Alcotest.bool "y3" false m.(enc.Encoding.y.(3));
    check Alcotest.bool "y4" false m.(enc.Encoding.y.(4))
  | _ -> Alcotest.fail "expected optimal 3"

let test_ca_cardinality_order () =
  (* star K_{1,4}: independent sets {leaves} (4) and {center} (1); CA forces
     the larger set to take color 0 *)
  let g = Generators.star 5 in
  let enc = Encoding.encode g ~k:3 in
  Sbp.add Sbp.Ca enc;
  match Optimize.solve_formula Types.Pbs2 enc.Encoding.formula budget with
  | Optimize.Optimal (m, 2) ->
    let coloring = Encoding.decode enc m in
    check Alcotest.int "leaves get color 0" 0 coloring.(1);
    check Alcotest.int "center gets color 1" 1 coloring.(0)
  | _ -> Alcotest.fail "expected optimal 2"

(* Figure 1 of the paper: the 4-vertex example graph. V1 V2 V3 form a
   triangle, V4 is adjacent to V3 (and can share a color with V1 or V2). *)
let figure1_graph () = Graph.of_edges 4 [ (0, 1); (0, 2); (1, 2); (2, 3) ]

let count_optimal_colorings sbp =
  (* enumerate proper colorings of the figure-1 graph with K=4 and count the
     3-color assignments permitted by the construction, by brute force over
     color assignments checked against the SBP-constrained formula *)
  let g = figure1_graph () in
  let enc = Encoding.encode g ~k:4 in
  Sbp.add sbp enc;
  let f = enc.Encoding.formula in
  let count = ref 0 in
  let n = 4 and k = 4 in
  let coloring = Array.make n 0 in
  let rec go v =
    if v = n then begin
      if Graph.is_proper_coloring g coloring then begin
        (* extend to a full assignment of the encoding variables *)
        let eng = Colib_solver.Engine.create Types.Pbs2 (Formula.num_vars f) in
        Colib_solver.Engine.add_formula eng f;
        (try
           for u = 0 to n - 1 do
             for j = 0 to k - 1 do
               Colib_solver.Engine.add_clause eng
                 [
                   (if coloring.(u) = j then Lit.pos enc.Encoding.x.(u).(j)
                    else Lit.neg enc.Encoding.x.(u).(j));
                 ]
             done
           done;
           if Graph.count_colors coloring = 3 then
             match Colib_solver.Engine.solve eng budget with
             | Types.Sat _ -> incr count
             | _ -> ()
         with _ -> ())
      end
    end
    else
      for c = 0 to k - 1 do
        coloring.(v) <- c;
        go (v + 1)
      done
  in
  go 0;
  !count

let test_figure1_pruning_strength () =
  (* progressively stronger constructions permit progressively fewer
     3-color assignments of the figure-1 example *)
  let none = count_optimal_colorings Sbp.No_sbp in
  let nu = count_optimal_colorings Sbp.Nu in
  let ca = count_optimal_colorings Sbp.Ca in
  let li = count_optimal_colorings Sbp.Li in
  check Alcotest.bool "NU prunes" true (nu < none);
  check Alcotest.bool "CA prunes more" true (ca <= nu);
  check Alcotest.bool "LI prunes most" true (li <= ca);
  (* the paper's Figure 1: two independent-set partitions exist; LI leaves
     exactly one color assignment per partition *)
  check Alcotest.int "LI leaves 2" 2 li;
  check Alcotest.bool "all keep at least one" true (li >= 1)

let test_region_ordering_preserves_optimum () =
  (* two adjacent regions needing 2 and 3 frequencies: chi = 5 with and
     without the region-ordering predicates, and the assignment within each
     region is forced ascending *)
  let demands = [| 2; 3 |] in
  let g =
    Generators.frequency_assignment ~demands ~adjacent:[ (0, 1) ]
  in
  let offsets = [| 0; 2; 5 |] in
  let enc = Encoding.encode g ~k:6 in
  Sbp.add_region_ordering enc ~offsets;
  match Optimize.solve_formula Types.Pbs2 enc.Encoding.formula budget with
  | Optimize.Optimal (m, 5) ->
    let coloring = Encoding.decode enc m in
    check Alcotest.bool "region 0 ascending" true (coloring.(0) < coloring.(1));
    check Alcotest.bool "region 1 ascending" true
      (coloring.(2) < coloring.(3) && coloring.(3) < coloring.(4))
  | r ->
    Alcotest.fail
      (Format.asprintf "expected optimal 5, got %a" Optimize.pp_result r)

let test_region_ordering_prunes_symmetry () =
  (* within-region interchangeability disappears from the symmetry group *)
  let demands = [| 3; 2 |] in
  let g = Generators.frequency_assignment ~demands ~adjacent:[ (0, 1) ] in
  let order_of enc =
    let res, _ =
      Colib_symmetry.Formula_graph.detect enc.Encoding.formula
    in
    res.Colib_symmetry.Auto.order_log10
  in
  let plain = Encoding.encode g ~k:6 in
  let constrained = Encoding.encode g ~k:6 in
  Sbp.add_region_ordering constrained ~offsets:[| 0; 3; 5 |];
  check Alcotest.bool "smaller group" true
    (order_of constrained < order_of plain)

let () =
  Alcotest.run "encode"
    [
      ( "encoding",
        [
          Alcotest.test_case "sizes" `Quick test_encoding_sizes;
          Alcotest.test_case "bad k" `Quick test_encoding_rejects_bad_k;
          Alcotest.test_case "decode/verify" `Quick test_decode_verify;
        ] );
      ( "sbp sizes",
        [
          Alcotest.test_case "NU" `Quick test_nu_size;
          Alcotest.test_case "CA" `Quick test_ca_size;
          Alcotest.test_case "LI" `Quick test_li_size;
          Alcotest.test_case "LI prefix" `Quick test_li_prefix_size;
          Alcotest.test_case "SC" `Quick test_sc_size;
          Alcotest.test_case "SC max degree" `Quick test_sc_picks_max_degree;
          Alcotest.test_case "names" `Quick test_sbp_names;
        ] );
      ( "sbp correctness",
        [
          qtest (prop_sbp_preserves_optimum Sbp.Nu);
          qtest (prop_sbp_preserves_optimum Sbp.Ca);
          qtest (prop_sbp_preserves_optimum Sbp.Li);
          qtest (prop_sbp_preserves_optimum Sbp.Li_prefix);
          qtest (prop_sbp_preserves_optimum Sbp.Sc);
          qtest (prop_sbp_preserves_optimum Sbp.Nu_sc);
          qtest prop_y_first_irrelevant_to_optimum;
          Alcotest.test_case "LI subsumes NU" `Quick test_li_subsumes_nu;
          Alcotest.test_case "NU ordering" `Quick test_nu_order;
          Alcotest.test_case "CA ordering" `Quick test_ca_cardinality_order;
          Alcotest.test_case "figure 1" `Slow test_figure1_pruning_strength;
        ] );
      ( "application sbp",
        [
          Alcotest.test_case "region ordering optimum" `Quick
            test_region_ordering_preserves_optimum;
          Alcotest.test_case "region ordering symmetry" `Quick
            test_region_ordering_prunes_symmetry;
        ] );
    ]
