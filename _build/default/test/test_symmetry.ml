(* Tests for the symmetry substrate: permutations, Schreier–Sims, partition
   refinement, the automorphism search, the formula-graph construction, and
   lex-leader SBPs. *)

module Perm = Colib_symmetry.Perm
module Group = Colib_symmetry.Group
module Cgraph = Colib_symmetry.Cgraph
module Refine = Colib_symmetry.Refine
module Auto = Colib_symmetry.Auto
module Formula_graph = Colib_symmetry.Formula_graph
module Lex_leader = Colib_symmetry.Lex_leader
module Graph = Colib_graph.Graph
module Generators = Colib_graph.Generators
module Formula = Colib_sat.Formula
module Lit = Colib_sat.Lit
module Engine = Colib_solver.Engine
module Types = Colib_solver.Types

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ---------- permutations ---------- *)

let test_perm_basics () =
  let p = Perm.of_cycles 5 [ [ 0; 1; 2 ] ] in
  check Alcotest.int "img 0" 1 (Perm.image p 0);
  check Alcotest.int "img 2" 0 (Perm.image p 2);
  check Alcotest.int "img 3" 3 (Perm.image p 3);
  check Alcotest.int "order" 3 (Perm.order_of_perm p);
  check Alcotest.int "support" 3 (Perm.support_size p);
  check Alcotest.bool "id" true (Perm.is_identity (Perm.identity 4));
  check Alcotest.bool "inv" true
    (Perm.is_identity (Perm.compose p (Perm.inverse p)))

let test_perm_invalid () =
  check Alcotest.bool "not a perm" true
    (try
       ignore (Perm.of_array [| 0; 0; 1 |]);
       false
     with Invalid_argument _ -> true);
  check Alcotest.bool "overlapping cycles" true
    (try
       ignore (Perm.of_cycles 4 [ [ 0; 1 ]; [ 1; 2 ] ]);
       false
     with Invalid_argument _ -> true)

let test_perm_cycles_roundtrip () =
  let p = Perm.of_cycles 8 [ [ 0; 3 ]; [ 1; 5; 6 ] ] in
  check Alcotest.bool "roundtrip" true
    (Perm.equal p (Perm.of_cycles 8 (Perm.cycles p)))

let perm_arb n =
  QCheck.make
    ~print:(fun p -> Format.asprintf "%a" Perm.pp p)
    QCheck.Gen.(
      map
        (fun seed ->
          let rng = Colib_graph.Prng.create seed in
          let a = Array.init n (fun i -> i) in
          Colib_graph.Prng.shuffle rng a;
          Perm.of_array a)
        int)

let prop_compose_assoc =
  QCheck.Test.make ~name:"composition associative" ~count:100
    (QCheck.triple (perm_arb 7) (perm_arb 7) (perm_arb 7))
    (fun (a, b, c) ->
      Perm.equal
        (Perm.compose a (Perm.compose b c))
        (Perm.compose (Perm.compose a b) c))

let prop_inverse =
  QCheck.Test.make ~name:"p * p^-1 = id" ~count:100 (perm_arb 9) (fun p ->
      Perm.is_identity (Perm.compose (Perm.inverse p) p)
      && Perm.is_identity (Perm.compose p (Perm.inverse p)))

(* ---------- groups ---------- *)

let test_group_orders () =
  let p = Perm.of_cycles in
  check (Alcotest.float 0.01) "S4" 24.0
    (Group.order 4 [ p 4 [ [ 0; 1 ] ]; p 4 [ [ 0; 1; 2; 3 ] ] ]);
  check (Alcotest.float 0.01) "A5" 60.0
    (Group.order 5 [ p 5 [ [ 0; 1; 2 ] ]; p 5 [ [ 0; 1; 2; 3; 4 ] ] ]);
  check (Alcotest.float 0.01) "D5" 10.0
    (Group.order 5 [ p 5 [ [ 0; 1; 2; 3; 4 ] ]; p 5 [ [ 1; 4 ]; [ 2; 3 ] ] ]);
  check (Alcotest.float 0.01) "C6" 6.0
    (Group.order 6 [ p 6 [ [ 0; 1; 2; 3; 4; 5 ] ] ]);
  check (Alcotest.float 0.01) "trivial" 1.0 (Group.order 5 [])

let test_group_orbit () =
  let p = Perm.of_cycles 6 [ [ 0; 1; 2 ] ] in
  check (Alcotest.list Alcotest.int) "orbit 0" [ 0; 1; 2 ] (Group.orbit 6 [ p ] 0);
  check (Alcotest.list Alcotest.int) "orbit 4" [ 4 ] (Group.orbit 6 [ p ] 4);
  check Alcotest.int "orbits count" 4 (List.length (Group.orbits 6 [ p ]))

let test_group_mem () =
  let p = Perm.of_cycles in
  let gens = [ p 4 [ [ 0; 1 ] ]; p 4 [ [ 0; 1; 2; 3 ] ] ] in
  check Alcotest.bool "S4 contains (2 3)" true
    (Group.mem 4 gens (p 4 [ [ 2; 3 ] ]));
  let a4_gens = [ p 4 [ [ 0; 1; 2 ] ]; p 4 [ [ 1; 2; 3 ] ] ] in
  check Alcotest.bool "A4 misses (0 1)" false
    (Group.mem 4 a4_gens (p 4 [ [ 0; 1 ] ]))

(* ---------- refinement ---------- *)

let cg_of_graph ?colors g =
  let n = Graph.num_vertices g in
  let colors = match colors with Some c -> c | None -> Array.make n 0 in
  Cgraph.make ~n ~colors ~edges:(Graph.edges g)

let test_refine_regular_graph_stays_unit () =
  (* a cycle is vertex-transitive: refinement cannot split the unit cell *)
  let p = Refine.initial (cg_of_graph (Generators.cycle 6)) in
  check Alcotest.int "one cell" 1 (Refine.num_cells p)

let test_refine_star_splits () =
  (* star: center has degree n-1, leaves degree 1 *)
  let p = Refine.initial (cg_of_graph (Generators.star 5)) in
  check Alcotest.int "two cells" 2 (Refine.num_cells p)

let test_refine_path_degrees () =
  (* path on 5: ends, middles, center are distinguished by iterated degrees *)
  let p = Refine.initial (cg_of_graph (Generators.path 5)) in
  check Alcotest.int "three cells" 3 (Refine.num_cells p)

let test_refine_respects_colors () =
  let g = Generators.cycle 4 in
  let p = Refine.initial (cg_of_graph ~colors:[| 0; 1; 0; 1 |] g) in
  check Alcotest.int "color split" 2 (Refine.num_cells p)

let test_individualize () =
  let cgr = cg_of_graph (Generators.cycle 6) in
  let p = Refine.initial cgr in
  let v = List.hd (Refine.cell_contents p 0) in
  Refine.individualize p v;
  Refine.refine_after cgr p (Refine.cell_of_vertex p v);
  (* individualizing one vertex of a cycle splits by distance: {v},
     {v-1,v+1}, {v-2,v+2}, {v+3} *)
  check Alcotest.int "distance cells" 4 (Refine.num_cells p)

(* ---------- automorphisms ---------- *)

let test_auto_known_groups () =
  List.iter
    (fun (name, g, expected) ->
      let r = Auto.automorphisms (cg_of_graph g) in
      check Alcotest.bool (name ^ " complete") true r.Auto.complete;
      check (Alcotest.float 0.01) name expected
        (10.0 ** r.Auto.order_log10))
    [
      ("C5", Generators.cycle 5, 10.0);
      ("C6", Generators.cycle 6, 12.0);
      ("K5", Generators.complete 5, 120.0);
      ("K33", Generators.complete_bipartite 3 3, 72.0);
      ("petersen", Generators.petersen (), 120.0);
      ("path4", Generators.path 4, 2.0);
      ("star5", Generators.star 5, 24.0);
      ("queen5_5", Generators.queens ~rows:5 ~cols:5, 8.0);
      ("queen5_6 rect", Generators.queens ~rows:5 ~cols:6, 4.0);
    ]

let test_auto_generators_valid () =
  List.iter
    (fun g ->
      let cgr = cg_of_graph g in
      let r = Auto.automorphisms cgr in
      List.iter
        (fun p ->
          check Alcotest.bool "generator is automorphism" true
            (Cgraph.is_automorphism cgr p))
        r.Auto.generators)
    [
      Generators.petersen ();
      Generators.queens ~rows:4 ~cols:4;
      Generators.mycielski 3;
      Generators.gnm ~n:12 ~m:20 ~seed:5;
    ]

let test_auto_order_matches_schreier_sims () =
  List.iter
    (fun g ->
      let cgr = cg_of_graph g in
      let r = Auto.automorphisms cgr in
      let ss = Group.order_log10 (Graph.num_vertices g) r.Auto.generators in
      check (Alcotest.float 0.001) "order consistent" r.Auto.order_log10 ss)
    [
      Generators.cycle 8;
      Generators.complete 6;
      Generators.petersen ();
      Generators.complete_bipartite 4 4;
      Generators.star 6;
    ]

let test_auto_crown_and_kneser () =
  (* crown graph on 2n vertices: Aut = S_n x Z_2, order 2 * n! *)
  let r = Auto.automorphisms (cg_of_graph (Generators.crown 4)) in
  check (Alcotest.float 0.01) "crown4" 48.0 (10.0 ** r.Auto.order_log10);
  (* Kneser K(5,2) is the Petersen graph: Aut = S_5, order 120 *)
  let r = Auto.automorphisms (cg_of_graph (Generators.kneser ~n:5 ~k:2)) in
  check (Alcotest.float 0.01) "kneser52" 120.0 (10.0 ** r.Auto.order_log10)

let test_auto_budget_cut () =
  (* with a one-node budget on a very symmetric graph the search must
     report incompleteness rather than a wrong answer *)
  let r = Auto.automorphisms ~node_budget:1 (cg_of_graph (Generators.complete 8)) in
  check Alcotest.bool "incomplete" false r.Auto.complete;
  (* whatever was found must still be valid *)
  let cgr = cg_of_graph (Generators.complete 8) in
  List.iter
    (fun p ->
      check Alcotest.bool "still valid" true (Cgraph.is_automorphism cgr p))
    r.Auto.generators

let test_refine_copy_independent () =
  let cgr = cg_of_graph (Generators.cycle 6) in
  let p = Refine.initial cgr in
  let q = Refine.copy p in
  let v = List.hd (Refine.cell_contents q 0) in
  Refine.individualize q v;
  check Alcotest.int "original untouched" 1 (Refine.num_cells p);
  check Alcotest.int "copy split" 2 (Refine.num_cells q)

let test_auto_asymmetric () =
  (* the smallest asymmetric tree: a 6-path with a pendant on its third
     vertex *)
  let g =
    Graph.of_edges 7 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (2, 6) ]
  in
  let r = Auto.automorphisms (cg_of_graph g) in
  check (Alcotest.float 0.001) "trivial group" 0.0 r.Auto.order_log10;
  check Alcotest.int "no generators" 0 (List.length r.Auto.generators)

let test_auto_colors_restrict () =
  (* K4 has 24 automorphisms; coloring one vertex apart leaves 6 *)
  let g = Generators.complete 4 in
  let r = Auto.automorphisms (cg_of_graph ~colors:[| 1; 0; 0; 0 |] g) in
  check (Alcotest.float 0.01) "S3" 6.0 (10.0 ** r.Auto.order_log10)

let test_order_string () =
  check Alcotest.string "one" "1" (Auto.order_string 0.0);
  check Alcotest.string "24" "24" (Auto.order_string (log10 24.0));
  check Alcotest.string "big" "1.1e+168" (Auto.order_string 168.04139)

let prop_random_graph_generators_valid =
  QCheck.Test.make ~name:"random graph generators are automorphisms" ~count:30
    (QCheck.make
       ~print:(fun (n, m, s) -> Printf.sprintf "gnm(%d,%d,%d)" n m s)
       QCheck.Gen.(
         let* n = int_range 2 10 in
         let* m = int_range 0 (n * (n - 1) / 2) in
         let* s = int_range 0 9999 in
         return (n, m, s)))
    (fun (n, m, s) ->
      let g = Generators.gnm ~n ~m ~seed:s in
      let cgr = cg_of_graph g in
      let r = Auto.automorphisms cgr in
      List.for_all (Cgraph.is_automorphism cgr) r.Auto.generators)

(* ---------- formula graphs ---------- *)

let test_formula_graph_color_symmetry () =
  (* triangle, K=3: 3! color permutations x |Aut(K3)| = 6 x 6 = 36 *)
  let enc = Colib_encode.Encoding.encode (Generators.complete 3) ~k:3 in
  let res, lit_perms = Formula_graph.detect enc.Colib_encode.Encoding.formula in
  check (Alcotest.float 0.01) "colors x vertices" 36.0
    (10.0 ** res.Auto.order_log10);
  check Alcotest.bool "some generators" true (List.length lit_perms > 0)

let test_formula_graph_consistency () =
  (* every validated literal permutation maps complementary pairs to
     complementary pairs *)
  let enc = Colib_encode.Encoding.encode (Generators.cycle 5) ~k:4 in
  let _, lit_perms = Formula_graph.detect enc.Colib_encode.Encoding.formula in
  List.iter
    (fun p ->
      let nlits = Perm.degree p in
      for l = 0 to nlits - 1 do
        let img = Perm.image p l in
        let img_neg = Perm.image p (l lxor 1) in
        check Alcotest.bool "consistency" true (img lxor 1 = img_neg)
      done)
    lit_perms

let test_formula_graph_symmetries_are_formula_symmetries () =
  (* applying a detected literal permutation to all clauses yields the same
     clause set *)
  let enc = Colib_encode.Encoding.encode (Generators.complete 3) ~k:3 in
  let f = enc.Colib_encode.Encoding.formula in
  let _, lit_perms = Formula_graph.detect f in
  let clause_set f' =
    List.sort_uniq compare
      (List.map
         (fun c ->
           List.sort Int.compare
             (List.map Lit.to_index (Colib_sat.Clause.to_list c)))
         (Formula.clauses f'))
  in
  let base = clause_set f in
  List.iter
    (fun p ->
      let mapped =
        List.sort_uniq compare
          (List.map (List.map (Perm.image p)) base)
      in
      let mapped = List.map (List.sort Int.compare) mapped in
      check Alcotest.bool "clause set preserved" true
        (List.sort compare mapped = List.sort compare base))
    lit_perms

let test_formula_graph_coefficients_block_spurious () =
  (* 2a + b >= 2 admits (a) alone but not (b) alone: a and b must NOT be
     reported symmetric. With uniform coefficients they must be. *)
  let f = Formula.create () in
  let a = Formula.fresh_var f and b = Formula.fresh_var f in
  Colib_sat.Formula.add_pb_ge f [ (2, Lit.pos a); (1, Lit.pos b) ] 2;
  let res, _ = Formula_graph.detect f in
  check (Alcotest.float 0.001) "asymmetric row: trivial group" 0.0
    res.Auto.order_log10;
  let f' = Formula.create () in
  let a' = Formula.fresh_var f' and b' = Formula.fresh_var f' in
  Colib_sat.Formula.add_pb_ge f' [ (1, Lit.pos a'); (1, Lit.pos b') ] 2;
  let res', _ = Formula_graph.detect f' in
  check Alcotest.bool "uniform row: a,b interchangeable" true
    (res'.Auto.order_log10 > 0.001)

let test_formula_graph_phase_shift () =
  (* (a | b | c) & (~a | ~b | ~c): swapping every variable's polarity maps
     the clause set to itself — detectable because literal vertices share one
     color (Aloul et al. 2003). Ternary clauses keep clause vertices, so the
     binary-clause/consistency-edge confusion cannot arise. *)
  let f = Formula.create () in
  let a = Formula.fresh_var f and b = Formula.fresh_var f
  and c = Formula.fresh_var f in
  Formula.add_clause f [ Lit.pos a; Lit.pos b; Lit.pos c ];
  Formula.add_clause f [ Lit.neg a; Lit.neg b; Lit.neg c ];
  let _, lit_perms = Formula_graph.detect f in
  let has_phase_shift =
    List.exists
      (fun p ->
        List.exists
          (fun v ->
            Perm.image p (Lit.to_index (Lit.pos v))
            = Lit.to_index (Lit.neg v))
          [ a; b; c ])
      lit_perms
  in
  check Alcotest.bool "phase shift found" true has_phase_shift

let test_formula_graph_circular_chain_guard () =
  (* (a | b) & (~a | ~b) is the paper's pathological circular-implication
     case: the graph is a 4-cycle whose rotations are spurious symmetries.
     The Boolean-consistency validation must reject those, so every reported
     literal permutation is a genuine formula symmetry. *)
  let f = Formula.create () in
  let a = Formula.fresh_var f and b = Formula.fresh_var f in
  Formula.add_clause f [ Lit.pos a; Lit.pos b ];
  Formula.add_clause f [ Lit.neg a; Lit.neg b ];
  let _, lit_perms = Formula_graph.detect f in
  List.iter
    (fun p ->
      for v = 0 to 1 do
        check Alcotest.bool "consistency" true
          (Perm.image p (Lit.to_index (Lit.pos v)) lxor 1
          = Perm.image p (Lit.to_index (Lit.neg v)))
      done)
    lit_perms

(* ---------- lex-leader SBPs ---------- *)

let count_models f =
  (* brute force model count over the formula's variables *)
  let n = Formula.num_vars f in
  assert (n <= 20);
  let count = ref 0 in
  for a = 0 to (1 lsl n) - 1 do
    let value l =
      let b = a land (1 lsl Lit.var l) <> 0 in
      if Lit.sign l then b else not b
    in
    if Formula.check_model f value then incr count
  done;
  !count

let test_lex_leader_prunes_but_preserves_sat () =
  (* 3 interchangeable variables under rotation: SBPs must keep >= 1 model
     per orbit and strictly reduce the model count *)
  let f = Formula.create () in
  let xs = Formula.fresh_vars f 3 in
  Formula.add_clause f (Array.to_list (Array.map Lit.pos xs));
  let before = count_models f in
  check Alcotest.int "7 models" 7 before;
  let rot =
    Perm.of_array
      (Array.of_list
         (List.concat_map
            (fun v -> [ Lit.to_index (Lit.pos v); Lit.to_index (Lit.neg v) ])
            [ 1; 2; 0 ]))
  in
  Lex_leader.add_for_generator f rot;
  (* models over original vars: project by checking satisfiability of each
     original assignment extended over aux vars *)
  let n_aux = Formula.num_vars f in
  let surviving = ref 0 in
  for a = 0 to 7 do
    let eng = Engine.create Types.Pbs2 n_aux in
    Engine.add_formula eng f;
    Array.iteri
      (fun i v ->
        Engine.add_clause eng
          [ (if a land (1 lsl i) <> 0 then Lit.pos v else Lit.neg v) ])
      xs;
    match Engine.solve eng (Types.within_seconds 5.0) with
    | Types.Sat _ -> incr surviving
    | _ -> ()
  done;
  check Alcotest.bool "pruned" true (!surviving < before);
  check Alcotest.bool "nonempty" true (!surviving >= 1)

let test_lex_leader_identity_noop () =
  let f = Formula.create () in
  let _ = Formula.fresh_vars f 4 in
  let before = Formula.num_clauses f in
  Lex_leader.add_for_generator f (Perm.identity 8);
  check Alcotest.int "no clauses" before (Formula.num_clauses f)

let test_lex_leader_preserves_optimum () =
  (* chromatic number unchanged when SBPs for detected symmetries are added *)
  List.iter
    (fun (g, expect) ->
      let enc = Colib_encode.Encoding.encode g ~k:(expect + 2) in
      let f = enc.Colib_encode.Encoding.formula in
      let _, perms = Formula_graph.detect f in
      let _ = Lex_leader.add_all f perms in
      match
        Colib_solver.Optimize.solve_formula Types.Pbs2 f
          (Types.within_seconds 20.0)
      with
      | Colib_solver.Optimize.Optimal (_, c) ->
        check Alcotest.int "optimum preserved" expect c
      | _ -> Alcotest.fail "expected optimal")
    [
      (Generators.cycle 5, 3);
      (Generators.petersen (), 3);
      (Generators.complete 4, 4);
      (Generators.mycielski 3, 4);
    ]

let () =
  Alcotest.run "symmetry"
    [
      ( "perm",
        [
          Alcotest.test_case "basics" `Quick test_perm_basics;
          Alcotest.test_case "invalid" `Quick test_perm_invalid;
          Alcotest.test_case "cycles roundtrip" `Quick test_perm_cycles_roundtrip;
          qtest prop_compose_assoc;
          qtest prop_inverse;
        ] );
      ( "group",
        [
          Alcotest.test_case "orders" `Quick test_group_orders;
          Alcotest.test_case "orbit" `Quick test_group_orbit;
          Alcotest.test_case "membership" `Quick test_group_mem;
        ] );
      ( "refine",
        [
          Alcotest.test_case "regular" `Quick test_refine_regular_graph_stays_unit;
          Alcotest.test_case "star" `Quick test_refine_star_splits;
          Alcotest.test_case "path" `Quick test_refine_path_degrees;
          Alcotest.test_case "colors" `Quick test_refine_respects_colors;
          Alcotest.test_case "individualize" `Quick test_individualize;
        ] );
      ( "auto",
        [
          Alcotest.test_case "known groups" `Quick test_auto_known_groups;
          Alcotest.test_case "generators valid" `Quick test_auto_generators_valid;
          Alcotest.test_case "order vs schreier-sims" `Quick
            test_auto_order_matches_schreier_sims;
          Alcotest.test_case "asymmetric" `Quick test_auto_asymmetric;
          Alcotest.test_case "crown and kneser" `Quick test_auto_crown_and_kneser;
          Alcotest.test_case "budget cut" `Quick test_auto_budget_cut;
          Alcotest.test_case "copy independent" `Quick
            test_refine_copy_independent;
          Alcotest.test_case "colors restrict" `Quick test_auto_colors_restrict;
          Alcotest.test_case "order string" `Quick test_order_string;
          qtest prop_random_graph_generators_valid;
        ] );
      ( "formula_graph",
        [
          Alcotest.test_case "color symmetry" `Quick
            test_formula_graph_color_symmetry;
          Alcotest.test_case "boolean consistency" `Quick
            test_formula_graph_consistency;
          Alcotest.test_case "clause set preserved" `Quick
            test_formula_graph_symmetries_are_formula_symmetries;
          Alcotest.test_case "coefficients block spurious" `Quick
            test_formula_graph_coefficients_block_spurious;
          Alcotest.test_case "phase shift" `Quick test_formula_graph_phase_shift;
          Alcotest.test_case "circular chain guard" `Quick
            test_formula_graph_circular_chain_guard;
        ] );
      ( "lex_leader",
        [
          Alcotest.test_case "prunes, preserves sat" `Quick
            test_lex_leader_prunes_but_preserves_sat;
          Alcotest.test_case "identity noop" `Quick test_lex_leader_identity_noop;
          Alcotest.test_case "optimum preserved" `Slow
            test_lex_leader_preserves_optimum;
        ] );
    ]
