(* Integration tests: the full flow (encode → SBPs → detect → break → solve)
   and the one-call exact coloring API, on instances with known chromatic
   numbers. *)

module Graph = Colib_graph.Graph
module Generators = Colib_graph.Generators
module Benchmarks = Colib_graph.Benchmarks
module Brute = Colib_graph.Brute
module Flow = Colib_core.Flow
module Exact = Colib_core.Exact_coloring
module Sbp = Colib_encode.Sbp
module Types = Colib_solver.Types

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let test_flow_optimal_known () =
  List.iter
    (fun (name, g, k, chi) ->
      let cfg = Flow.config ~sbp:Sbp.Nu_sc ~instance_dependent:false ~timeout:30.0 ~k () in
      let r = Flow.run g cfg in
      match r.Flow.outcome with
      | Flow.Optimal c ->
        check Alcotest.int (name ^ " chi") chi c;
        (match r.Flow.coloring with
        | Some coloring ->
          check Alcotest.bool (name ^ " proper") true
            (Graph.is_proper_coloring g coloring)
        | None -> Alcotest.fail "missing coloring")
      | _ -> Alcotest.fail (name ^ ": expected optimal"))
    [
      ("myciel3", Generators.mycielski 3, 8, 4);
      ("queen5_5", Generators.queens ~rows:5 ~cols:5, 8, 5);
      ("petersen", Generators.petersen (), 6, 3);
    ]

let test_flow_unsat_below_chromatic () =
  (* K=3 for a 4-chromatic graph must report No_coloring *)
  let g = Generators.mycielski 3 in
  let cfg = Flow.config ~timeout:30.0 ~instance_dependent:false ~k:3 () in
  let r = Flow.run g cfg in
  check Alcotest.bool "no coloring" true (r.Flow.outcome = Flow.No_coloring)

let test_flow_instance_dependent_helps () =
  (* queen6_6 at K=7: hopeless without SBPs at a tiny budget, solvable with
     the full symmetry-breaking flow *)
  let g = Generators.queens ~rows:6 ~cols:6 in
  let bare = Flow.config ~instance_dependent:false ~timeout:3.0 ~k:7 () in
  let broken = Flow.config ~sbp:Sbp.Sc ~instance_dependent:true ~timeout:3.0 ~k:7 () in
  let r_bare = Flow.run g bare in
  let r_broken = Flow.run g broken in
  check Alcotest.bool "with SBPs optimal" true
    (r_broken.Flow.outcome = Flow.Optimal 7);
  check Alcotest.bool "bare not optimal at this budget" true
    (match r_bare.Flow.outcome with Flow.Optimal _ -> false | _ -> true)

let test_flow_sym_info () =
  let g = Generators.queens ~rows:5 ~cols:5 in
  let cfg = Flow.config ~timeout:5.0 ~k:6 () in
  let r = Flow.run g cfg in
  match r.Flow.sym with
  | Some si ->
    (* 6! color permutations x 8 board symmetries = 5760 *)
    check (Alcotest.float 0.01) "group order" (log10 5760.0) si.Flow.order_log10;
    check Alcotest.bool "generators found" true (si.Flow.num_generators > 0);
    check Alcotest.bool "complete" true si.Flow.complete
  | None -> Alcotest.fail "expected symmetry info"

let test_flow_stats_grow () =
  let g = Generators.cycle 5 in
  let cfg = Flow.config ~sbp:Sbp.Li ~timeout:5.0 ~k:4 () in
  let r = Flow.run g cfg in
  check Alcotest.bool "isd SBPs added clauses" true
    (r.Flow.stats_final.Colib_sat.Formula.cnf_clauses
    >= r.Flow.stats_encoded.Colib_sat.Formula.cnf_clauses)

let test_symmetry_stats_li_kills_all () =
  let g = Generators.queens ~rows:5 ~cols:5 in
  let si, _ = Flow.symmetry_stats g ~k:6 ~sbp:Sbp.Li in
  check (Alcotest.float 0.001) "trivial group" 0.0 si.Flow.order_log10;
  check Alcotest.int "no generators" 0 si.Flow.num_generators;
  (* the linear prefix reformulation is equally complete *)
  let si', _ = Flow.symmetry_stats g ~k:6 ~sbp:Sbp.Li_prefix in
  check (Alcotest.float 0.001) "prefix also trivial" 0.0 si'.Flow.order_log10

let test_symmetry_stats_ordering () =
  (* no SBPs >= SC >= NU >= LI in residual symmetry count *)
  let g = Generators.mycielski 4 in
  let order sbp =
    let si, _ = Flow.symmetry_stats g ~k:8 ~sbp in
    si.Flow.order_log10
  in
  let none = order Sbp.No_sbp in
  let sc = order Sbp.Sc in
  let nu = order Sbp.Nu in
  let li = order Sbp.Li in
  check Alcotest.bool "sc <= none" true (sc <= none);
  check Alcotest.bool "nu <= sc" true (nu <= sc);
  check Alcotest.bool "li <= nu" true (li <= nu);
  check (Alcotest.float 0.001) "li trivial" 0.0 li;
  (* the no-SBP encoding has at least the 8! color permutations *)
  let fact8 = log10 40320.0 in
  check Alcotest.bool "at least 8!" true (none >= fact8 -. 0.001)

let test_decide_k_colorable () =
  let g = Generators.petersen () in
  (match Flow.decide_k_colorable ~timeout:10.0 g ~k:3 with
  | `Yes coloring ->
    check Alcotest.bool "proper" true (Graph.is_proper_coloring g coloring)
  | _ -> Alcotest.fail "petersen is 3-colorable");
  match Flow.decide_k_colorable ~timeout:10.0 g ~k:2 with
  | `No -> ()
  | _ -> Alcotest.fail "petersen is not 2-colorable"

(* ---------- exact coloring API ---------- *)

let test_exact_known_chromatic () =
  List.iter
    (fun (name, g, chi) ->
      let a = Exact.chromatic_number ~timeout:30.0 g in
      check (Alcotest.option Alcotest.int) name (Some chi) a.Exact.chromatic;
      check Alcotest.bool (name ^ " proper") true
        (Graph.is_proper_coloring g a.Exact.coloring);
      check Alcotest.bool (name ^ " bound sandwich") true
        (a.Exact.lower <= chi && chi <= a.Exact.upper))
    [
      ("myciel3", Generators.mycielski 3, 4);
      ("myciel4", Generators.mycielski 4, 5);
      ("petersen", Generators.petersen (), 3);
      ("queen5_5", Generators.queens ~rows:5 ~cols:5, 5);
      ("K7", Generators.complete 7, 7);
      ("C9", Generators.cycle 9, 3);
      ("bipartite", Generators.complete_bipartite 4 5, 2);
    ]

let test_exact_empty_graph () =
  let a = Exact.chromatic_number (Graph.of_edges 0 []) in
  check (Alcotest.option Alcotest.int) "empty" (Some 0) a.Exact.chromatic

let test_exact_edgeless () =
  let a = Exact.chromatic_number (Graph.of_edges 5 []) in
  check (Alcotest.option Alcotest.int) "one color" (Some 1) a.Exact.chromatic

let test_exact_k_max_cap () =
  (* cap below the chromatic number on a graph whose bounds do not meet
     (myciel4: clique 2, chi 5): only bounds, lower raised above cap *)
  let g = Generators.mycielski 4 in
  let a = Exact.chromatic_number ~timeout:10.0 ~k_max:3 g in
  check (Alcotest.option Alcotest.int) "no exact" None a.Exact.chromatic;
  check Alcotest.bool "lower bound raised" true (a.Exact.lower >= 4)

let test_exact_agrees_with_brute =
  QCheck.Test.make ~name:"flow chi = brute-force chi" ~count:25
    (QCheck.make
       ~print:(fun (n, m, s) -> Printf.sprintf "gnm(%d,%d,%d)" n m s)
       QCheck.Gen.(
         let* n = int_range 3 9 in
         let* m = int_range 0 (n * (n - 1) / 2) in
         let* s = int_range 0 9999 in
         return (n, m, s)))
    (fun (n, m, s) ->
      let g = Generators.gnm ~n ~m ~seed:s in
      let a = Exact.chromatic_number ~timeout:30.0 g in
      a.Exact.chromatic = Some (Brute.chromatic_number g))

let test_exact_engines_agree () =
  let g = Generators.queens ~rows:5 ~cols:5 in
  List.iter
    (fun engine ->
      let a = Exact.chromatic_number ~engine ~timeout:30.0 g in
      check
        (Alcotest.option Alcotest.int)
        (Types.engine_name engine) (Some 5) a.Exact.chromatic)
    [ Types.Pbs2; Types.Galena; Types.Pueblo ]

(* ---------- benchmark spot checks ---------- *)

let test_zero_timeout_paths () =
  (* a zero budget must surface as Timed_out / `Unknown, never as a wrong
     answer *)
  let g = Generators.queens ~rows:6 ~cols:6 in
  let cfg = Flow.config ~instance_dependent:false ~timeout:0.0 ~k:7 () in
  let r = Flow.run g cfg in
  check Alcotest.bool "timed out" true
    (match r.Flow.outcome with
    | Flow.Timed_out -> true
    | Flow.Best _ -> true (* a first model can slip in before the check *)
    | Flow.Optimal _ | Flow.No_coloring -> false);
  match Flow.decide_k_colorable ~timeout:0.0 g ~k:7 with
  | `Unknown | `Yes _ -> ()
  | `No -> Alcotest.fail "cannot prove UNSAT in zero time"

let test_search_strategies () =
  List.iter
    (fun strategy ->
      List.iter
        (fun (name, g, chi) ->
          let a =
            Exact.chromatic_number_by_search ~strategy ~timeout:30.0 g
          in
          check (Alcotest.option Alcotest.int)
            (name
            ^ match strategy with `Linear -> " linear" | `Binary -> " binary")
            (Some chi) a.Exact.chromatic;
          check Alcotest.bool (name ^ " proper") true
            (Graph.is_proper_coloring g a.Exact.coloring))
        [
          ("myciel3", Generators.mycielski 3, 4);
          ("petersen", Generators.petersen (), 3);
          ("C7", Generators.cycle 7, 3);
          ("K5", Generators.complete 5, 5);
        ])
    [ `Linear; `Binary ]

let test_search_agrees_with_optimize =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"search loop = optimization loop" ~count:20
       (QCheck.make
          ~print:(fun (n, m, s) -> Printf.sprintf "gnm(%d,%d,%d)" n m s)
          QCheck.Gen.(
            let* n = int_range 3 8 in
            let* m = int_range 0 (n * (n - 1) / 2) in
            let* s = int_range 0 9999 in
            return (n, m, s)))
       (fun (n, m, s) ->
         let g = Generators.gnm ~n ~m ~seed:s in
         let a = Exact.chromatic_number ~timeout:30.0 g in
         let b = Exact.chromatic_number_by_search ~timeout:30.0 g in
         a.Exact.chromatic = b.Exact.chromatic))

let test_interval_graphs_perfect () =
  (* interval graphs are perfect: chi equals the maximum point overlap *)
  let intervals = [ (0, 4); (1, 6); (2, 3); (5, 9); (6, 8); (7, 10); (2, 7) ] in
  let g = Generators.interval_conflicts intervals in
  let max_overlap =
    let best = ref 0 in
    for t = 0 to 10 do
      let live =
        List.length (List.filter (fun (s, e) -> s <= t && t < e) intervals)
      in
      if live > !best then best := live
    done;
    !best
  in
  let a = Exact.chromatic_number ~timeout:30.0 g in
  check (Alcotest.option Alcotest.int) "chi = max overlap" (Some max_overlap)
    a.Exact.chromatic

let test_frequency_assignment_flow () =
  (* sum of demands of two adjacent regions is a lower bound; the solver
     proves the exact licensed spectrum *)
  let g =
    Generators.frequency_assignment ~demands:[| 2; 3; 2 |]
      ~adjacent:[ (0, 1); (1, 2) ]
  in
  let a = Exact.chromatic_number ~timeout:30.0 g in
  check (Alcotest.option Alcotest.int) "spectrum" (Some 5) a.Exact.chromatic

let test_benchmark_queens_chromatic () =
  List.iter
    (fun (name, chi) ->
      let b = Benchmarks.find name in
      let g = Lazy.force b.Benchmarks.graph in
      let cfg = Flow.config ~sbp:Sbp.Sc ~instance_dependent:true ~timeout:60.0
          ~k:(chi + 2) () in
      let r = Flow.run g cfg in
      check Alcotest.bool (name ^ " optimal") true
        (r.Flow.outcome = Flow.Optimal chi))
    [ ("queen5_5", 5); ("queen6_6", 7) ]

let () =
  Alcotest.run "core"
    [
      ( "flow",
        [
          Alcotest.test_case "optimal known" `Quick test_flow_optimal_known;
          Alcotest.test_case "unsat below chi" `Quick
            test_flow_unsat_below_chromatic;
          Alcotest.test_case "SBPs help" `Slow test_flow_instance_dependent_helps;
          Alcotest.test_case "sym info" `Quick test_flow_sym_info;
          Alcotest.test_case "stats grow" `Quick test_flow_stats_grow;
          Alcotest.test_case "LI kills all" `Quick test_symmetry_stats_li_kills_all;
          Alcotest.test_case "residual ordering" `Quick
            test_symmetry_stats_ordering;
          Alcotest.test_case "decide" `Quick test_decide_k_colorable;
        ] );
      ( "exact",
        [
          Alcotest.test_case "known chromatic" `Slow test_exact_known_chromatic;
          Alcotest.test_case "empty" `Quick test_exact_empty_graph;
          Alcotest.test_case "edgeless" `Quick test_exact_edgeless;
          Alcotest.test_case "k_max cap" `Quick test_exact_k_max_cap;
          qtest test_exact_agrees_with_brute;
          Alcotest.test_case "engines agree" `Slow test_exact_engines_agree;
          Alcotest.test_case "zero timeout" `Quick test_zero_timeout_paths;
          Alcotest.test_case "search strategies" `Quick test_search_strategies;
          test_search_agrees_with_optimize;
          Alcotest.test_case "interval graphs perfect" `Quick
            test_interval_graphs_perfect;
          Alcotest.test_case "frequency assignment" `Quick
            test_frequency_assignment_flow;
        ] );
      ( "benchmarks",
        [
          Alcotest.test_case "queens chromatic" `Slow
            test_benchmark_queens_chromatic;
        ] );
    ]
