(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Ramani, Aloul, Markov, Sakallah — "Breaking
   Instance-Independent Symmetries in Exact Graph Coloring").

     table1  — benchmark statistics (paper Table 1)
     table2  — formula sizes + residual symmetries per SBP (paper Table 2)
     table3  — solver sweep at K = 20 (paper Table 3)
     table4  — solver sweep at K = 30 (paper Table 4)
     table5  — per-instance queens results, all engines (paper Table 5)
     figure1 — the worked 4-vertex example (paper Figure 1)
     ablation— design-choice ablations (ours; see DESIGN.md)
     micro   — bechamel micro-benchmarks of the pipeline stages
     all     — everything above

   Absolute numbers differ from the paper (different machines, different
   solver implementations, scaled-down timeouts); the shapes — which
   configuration wins, by what factor, where symmetry breaking is decisive —
   are the reproduction target. EXPERIMENTS.md records paper-vs-measured.

   Robustness: every completed (instance, config) cell of the solver sweeps
   is journaled to runs/<run-id>.jsonl (each append is committed atomically,
   so a crash never corrupts it); --resume reloads the journal and skips
   the journaled cells. --jobs N runs sweep cells in supervised worker
   processes — a crashed or hung worker is classified, reported, and
   recorded as an unsolved cell instead of killing the run. With --out-dir,
   each section's table is written to <dir>/<section>.txt via a temp file
   renamed only on success, so readers never observe a truncated table.

   Exit codes: 0 success, 1 usage error, 3 certification failure,
   130 interrupted by SIGINT, 143 terminated by SIGTERM. *)

module Graph = Colib_graph.Graph
module Generators = Colib_graph.Generators
module Benchmarks = Colib_graph.Benchmarks
module Clique = Colib_graph.Clique
module Dsatur = Colib_graph.Dsatur
module Formula = Colib_sat.Formula
module Encoding = Colib_encode.Encoding
module Sbp = Colib_encode.Sbp
module Types = Colib_solver.Types
module Engine = Colib_solver.Engine
module Optimize = Colib_solver.Optimize
module Checkpoint = Colib_solver.Checkpoint
module Output = Colib_sat.Output
module Certify = Colib_check.Certify
module Rup = Colib_check.Rup
module Proof = Colib_sat.Proof
module Flow = Colib_core.Flow
module Auto = Colib_symmetry.Auto
module Formula_graph = Colib_symmetry.Formula_graph
module Lex_leader = Colib_symmetry.Lex_leader
module Portfolio = Colib_portfolio.Portfolio
module Journal = Colib_portfolio.Journal
module Frame = Colib_portfolio.Frame
module Client = Colib_server.Client
module Balancer = Colib_server.Balancer

type options = {
  timeout : float;        (* per-solve budget, seconds *)
  node_budget : int;      (* automorphism search nodes *)
  only : string list;     (* instance filter; [] = all *)
  jobs : int;             (* sweep cells per worker process; <=1 = in-process *)
  journal : Journal.t;    (* crash-safe record of completed sweep cells *)
  out_dir : string option; (* atomic per-section table files *)
  ckpt_dir : string;      (* mid-cell snapshots, runs/<run-id>.ckpt/ *)
  resume : bool;          (* also resume partially-solved cells mid-search *)
  daemon : string option;
      (* submit sweep cells to these coloring daemons (comma-separated
         socket specs, balanced with health-probed rotation) *)
  inprocess : bool;       (* run the engines' inprocessing ladder *)
}

(* ---------- signal handling ----------

   SIGINT/SIGTERM stop the run cooperatively: in-process solves notice the
   flag through their budget's cancel hook, worker processes are reaped by
   the supervisor's [should_stop], the journal already holds every completed
   cell (each append is atomic), and the harness exits 130/143. A partially
   emitted --out-dir table is left as an unrenamed .tmp, never published. *)

let interrupted : int option ref = ref None

let install_signal_handlers () =
  let record s = interrupted := Some s in
  Sys.set_signal Sys.sigint (Sys.Signal_handle record);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle record)

let interrupt_requested () = !interrupted <> None

let exit_interrupted () =
  match !interrupted with
  | None -> ()
  | Some s ->
    let name, code =
      if s = Sys.sigterm then ("SIGTERM", 143) else ("SIGINT", 130)
    in
    Printf.eprintf "bench: interrupted by %s (journal retained)\n%!" name;
    exit code

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let cert_failure_marker = "CERTIFICATION FAILURE"

let instances opts =
  match opts.only with
  | [] -> Benchmarks.all
  | names -> List.filter (fun b -> List.mem b.Benchmarks.name names) Benchmarks.all

let hr title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let pct_time t = Printf.sprintf "%.2f" t

(* ------------------------------------------------------------------ *)
(* shared: build a formula for (graph, k, sbp), optionally with the
   instance-dependent flow; returns formula + detection time *)

let build_formula ?(with_isd = false) ~node_budget g ~k ~sbp =
  let enc = Encoding.encode g ~k in
  Sbp.add sbp enc;
  let f = enc.Encoding.formula in
  if with_isd then begin
    let t0 = Colib_clock.Mclock.now () in
    let _, perms = Formula_graph.detect ~node_budget f in
    let _ = Lex_leader.add_all f perms in
    (f, Colib_clock.Mclock.now () -. t0)
  end
  else (f, 0.0)

(* every model an engine hands back is re-checked against the formula text;
   a failure here is a solver bug, so it aborts the whole benchmark run
   loudly (exit 3 from the top-level handler) rather than silently polluting
   a table. Raising — instead of exiting here — lets a certification failure
   inside a sweep worker travel back to the supervisor as a marked message. *)
let certify_model f m claimed =
  let fail fl =
    failwith
      (Printf.sprintf "%s: %s" cert_failure_marker
         (Certify.failure_to_string fl))
  in
  (match Certify.model f m with Ok () -> () | Error fl -> fail fl);
  match claimed with
  | None -> ()
  | Some c -> (
    match Certify.model_cost f m ~claimed:c with
    | Ok () -> ()
    | Error fl -> fail fl)

(* one sweep cell's measurement: timing, the engine's counters, and — when
   a proof was logged — the size of the trace and whether it replayed
   through the independent checker *)
type cell_stats = {
  cs_time : float;
  cs_solved : bool;
  cs_conflicts : int;
  cs_decisions : int;
  cs_propagations : int;
  cs_learned : int;
  cs_restarts : int;
  (* inprocessing counters (0 when the ladder is disabled) *)
  cs_subsumed : int;
  cs_eliminated : int;
  cs_probed : int;
  cs_substituted : int;
  cs_proof_steps : int;     (* 0 when no proof was logged *)
  cs_proof_checked : bool;  (* the trace replayed through Colib_check.Rup *)
}

(* proof logging is reserved for the learning engines: the generic B&B logs
   one decision-negation clause per backtrack, so its trace grows as
   conflicts x stack depth — prohibitive at sweep scale *)
let logs_proof = function
  | Types.Cplex -> false
  | Types.Pbs1 | Types.Pbs2 | Types.Galena | Types.Pueblo -> true

(* solve and report a [cell_stats] — timeouts count as the full budget,
   like the paper's totals. Every settled answer (optimal or UNSAT) of a
   proof-logging engine is replayed through the independent RUP checker; a
   rejected proof aborts the run like a certification failure. *)
let timed_solve ?ckpt ?(inprocess = true) engine f timeout =
  let t0 = Colib_clock.Mclock.now () in
  let budget =
    {
      (Types.within_seconds timeout) with
      Types.cancel = Some interrupt_requested;
    }
  in
  (* mid-cell checkpointing: a killed bench run resumes a half-solved cell
     from its last snapshot instead of repaying the whole cell budget. The
     snapshot is identity-validated (label, engine, k, digest of the OPB
     text) and deleted once the cell completes. *)
  let ck_emitter, ck_resume, ck_path =
    match ckpt with
    | None -> (None, None, None)
    | Some (dir, label, k, resume) ->
      Checkpoint.ensure_dir dir;
      let digest = Digest.to_hex (Digest.string (Output.opb_string f)) in
      let path =
        Checkpoint.snapshot_path ~dir ~label ~engine:(Types.engine_name engine)
          ~k
      in
      let sn =
        if not resume then None
        else
          match Checkpoint.read path with
          | Error _ -> None
          | Ok sn -> (
            match
              Checkpoint.validate sn ~label ~k ~digest ~engine
                ~nvars:(Formula.num_vars f)
            with
            | Ok () -> Some sn
            | Error _ -> None)
      in
      ( Some (Checkpoint.emitter ~label ~k ~digest ~path ~interval:5.0 ()),
        sn,
        Some path )
  in
  let trace =
    if not (logs_proof engine) then None
    else
      match ck_resume with
      | Some sn -> Some (Proof.of_steps sn.Checkpoint.sn_proof)
      | None -> Some (Proof.create ())
  in
  let eng = Engine.create ?proof:trace ~inprocess engine (Formula.num_vars f) in
  Engine.add_formula eng f;
  let r =
    match Formula.objective f with
    | Some obj ->
      Optimize.minimize ?checkpoint:ck_emitter ?resume:ck_resume eng obj
        budget
    | None -> (
      match Engine.solve eng budget with
      | Types.Sat m -> Optimize.Optimal (m, 0)
      | Types.Unsat -> Optimize.Unsatisfiable
      | Types.Unknown reason -> Optimize.Timeout reason)
  in
  (match ck_path with
  | Some p when not (interrupt_requested ()) -> (
    try Sys.remove p with Sys_error _ -> ())
  | _ -> ());
  let dt = Colib_clock.Mclock.now () -. t0 in
  let s = Engine.stats eng in
  let base =
    {
      cs_time = dt;
      cs_solved = false;
      cs_conflicts = s.Types.conflicts;
      cs_decisions = s.Types.decisions;
      cs_propagations = s.Types.propagations;
      cs_learned = s.Types.learned;
      cs_restarts = s.Types.restarts;
      cs_subsumed = s.Types.subsumed;
      cs_eliminated = s.Types.eliminated;
      cs_probed = s.Types.probed;
      cs_substituted = s.Types.substituted;
      cs_proof_steps =
        (match trace with Some t -> Proof.num_steps t | None -> 0);
      cs_proof_checked = false;
    }
  in
  let replay claim =
    match trace with
    | None -> false
    | Some t -> (
      match Rup.check_claim f claim (Proof.steps t) with
      | Ok _ -> true
      | Error fl ->
        failwith
          (Printf.sprintf "%s: proof replay: %s" cert_failure_marker
             (Rup.failure_to_string fl)))
  in
  match r with
  | Optimize.Optimal (m, c) ->
    let claimed = if Formula.objective f = None then None else Some c in
    certify_model f m claimed;
    let checked =
      match claimed with
      | Some c -> replay (Proof.Optimal_claim c)
      | None -> false
    in
    { base with cs_solved = true; cs_proof_checked = checked }
  | Optimize.Unsatisfiable ->
    { base with cs_solved = true; cs_proof_checked = replay Proof.Unsat_claim }
  | Optimize.Satisfiable (m, c, _) ->
    certify_model f m (Some c);
    { base with cs_time = Float.max dt timeout }
  | Optimize.Timeout _ -> { base with cs_time = Float.max dt timeout }

(* ------------------------------------------------------------------ *)
(* Table 1 *)

let table1 opts =
  hr "Table 1 — DIMACS graph coloring benchmarks";
  Printf.printf
    "(paper edge counts are doubled for some families; measured chromatic\n\
    \ numbers use clique/heuristic bounds plus the ILP flow within the \
     budget)\n\n";
  Printf.printf "%-12s %5s %7s %9s %8s %9s\n" "Instance" "#V" "#E"
    "#E(paper)" "K(paper)" "K(ours)";
  List.iter
    (fun b ->
      let g = Lazy.force b.Benchmarks.graph in
      let lower = Array.length (Clique.greedy g) in
      let upper = Dsatur.upper_bound g in
      let chi =
        if upper > 20 then ">20"
        else if lower = upper then string_of_int upper
        else begin
          let cfg =
            Flow.config ~sbp:Sbp.Sc ~instance_dependent:true
              ~timeout:(5.0 *. opts.timeout) ~k:upper ()
          in
          match (Flow.run g cfg).Flow.outcome with
          | Flow.Optimal c -> string_of_int c
          | Flow.Best c -> Printf.sprintf "<=%d" c
          | Flow.No_coloring | Flow.Timed_out -> Printf.sprintf "<=%d" upper
        end
      in
      Printf.printf "%-12s %5d %7d %9d %8s %9s\n" b.Benchmarks.name
        (Graph.num_vertices g) (Graph.num_edges g) b.Benchmarks.paper_edges
        (match b.Benchmarks.paper_chromatic with
        | Some c -> string_of_int c
        | None -> ">20")
        chi)
    (instances opts)

(* ------------------------------------------------------------------ *)
(* Table 2 *)

(* log10 of a sum of numbers given as log10 values *)
let log10_sum logs =
  match logs with
  | [] -> neg_infinity
  | _ ->
    let m = List.fold_left Float.max neg_infinity logs in
    m +. log10 (List.fold_left (fun acc l -> acc +. (10.0 ** (l -. m))) 0.0 logs)

let table2 ?(k = 20) opts =
  hr (Printf.sprintf "Table 2 — formula sizes and symmetry statistics (K=%d)" k);
  Printf.printf
    "(sums over the %d instances, as in the paper; paper totals at K=20:\n\
    \ no SBPs 1.1e+168 syms / 994 gens / 185 s, NU 5.0e+149 / 614 / 49 s,\n\
    \ CA 5.0e+149 / 614 / 49 s, LI 2.0e+01 / 0 / 84 s, SC 3.0e+164 / 941 / \
     167 s)\n\n"
    (List.length (instances opts));
  Printf.printf "%-9s %10s %10s %7s %14s %6s %9s\n" "SBP" "#V" "#CL" "#PB"
    "#S" "#G" "Time";
  List.iter
    (fun sbp ->
      let vars = ref 0 and cls = ref 0 and pbs = ref 0 in
      let gens = ref 0 and time = ref 0.0 in
      let orders = ref [] in
      List.iter
        (fun b ->
          let g = Lazy.force b.Benchmarks.graph in
          let si, st =
            Flow.symmetry_stats ~node_budget:opts.node_budget g ~k ~sbp
          in
          vars := !vars + st.Formula.vars;
          cls := !cls + st.Formula.cnf_clauses;
          pbs := !pbs + st.Formula.pb_constraints;
          gens := !gens + si.Flow.num_generators;
          time := !time +. si.Flow.detection_time;
          orders := si.Flow.order_log10 :: !orders)
        (instances opts);
      Printf.printf "%-9s %10d %10d %7d %14s %6d %8ss\n" (Sbp.name sbp) !vars
        !cls !pbs
        (Auto.order_string (log10_sum !orders))
        !gens (pct_time !time))
    Sbp.all

(* ------------------------------------------------------------------ *)
(* the sweep cell grid shared by Tables 3/4/5: one cell = one
   (instance, SBP, instance-dependent?, engine) measurement at a fixed K.
   Cells are the unit of journaling (resume skips completed ones) and of
   process isolation (--jobs races them in supervised workers). *)

type cell = {
  c_name : string;
  c_sbp : Sbp.construction;
  c_isd : bool;
  c_engine : Types.engine;
  c_k : int;
}

(* the journal key pins everything that affects a cell's numbers, so a
   resume with different parameters recomputes rather than reusing *)
let cell_key ~section ~timeout c =
  Printf.sprintf "%s|k=%d|t=%g|%s|%s|isd=%b|%s" section c.c_k timeout c.c_name
    (Sbp.name c.c_sbp) c.c_isd
    (Types.engine_name c.c_engine)

(* self-contained so it can run inside a forked worker: rebuilds the
   formula from the instance name rather than sharing parent state *)
let solve_cell ?ckpt ?inprocess ~node_budget ~timeout c =
  let b = Benchmarks.find c.c_name in
  let g = Lazy.force b.Benchmarks.graph in
  let f, _ =
    build_formula ~with_isd:c.c_isd ~node_budget g ~k:c.c_k ~sbp:c.c_sbp
  in
  timed_solve ?ckpt ?inprocess c.c_engine f timeout

(* every sweep cell measured (or reloaded from the journal) this run, in
   completion order — dumped to BENCH_PR3.json when the run finishes *)
let measured_cells : (string * cell_stats) list ref = ref []

let record_measured k cs = measured_cells := (k, cs) :: !measured_cells

(* Run every cell not already journaled; returns key -> cell_stats.
   Sequential mode reuses the built formula across consecutive cells that
   share (instance, sbp, isd); parallel mode trades that reuse for
   process-isolated workers. Cells finished during an interrupt are not
   journaled, so a resume rightly recomputes them. *)
let run_cells ~section opts cells =
  let results : (string, cell_stats) Hashtbl.t = Hashtbl.create 64 in
  let key c = cell_key ~section ~timeout:opts.timeout c in
  (* the snapshot label is the journal key: a snapshot can only resume the
     exact cell (section, instance, parameters) that wrote it *)
  let ckpt c = (opts.ckpt_dir, key c, c.c_k, opts.resume) in
  let todo =
    List.filter
      (fun c ->
        match Journal.find opts.journal (key c) with
        | Some r ->
          let fl field default =
            match List.assoc_opt field r with
            | Some s -> (try float_of_string s with _ -> default)
            | None -> default
          in
          let int field =
            match List.assoc_opt field r with
            | Some s -> (try int_of_string s with _ -> 0)
            | None -> 0
          in
          let flag field = List.assoc_opt field r = Some "true" in
          let cs =
            {
              cs_time = fl "time" opts.timeout;
              cs_solved = flag "solved";
              cs_conflicts = int "conflicts";
              cs_decisions = int "decisions";
              cs_propagations = int "propagations";
              cs_learned = int "learned";
              cs_restarts = int "restarts";
              cs_subsumed = int "subsumed";
              cs_eliminated = int "eliminated";
              cs_probed = int "probed";
              cs_substituted = int "substituted";
              cs_proof_steps = int "proof_steps";
              cs_proof_checked = flag "proof_checked";
            }
          in
          Hashtbl.replace results (key c) cs;
          record_measured (key c) cs;
          false
        | None -> true)
      cells
  in
  let n_all = List.length cells and n_todo = List.length todo in
  if n_all > n_todo then
    Printf.eprintf "bench: %s: resume skips %d/%d journaled cells\n%!" section
      (n_all - n_todo) n_all;
  let finish k cs =
    Hashtbl.replace results k cs;
    record_measured k cs;
    Journal.append opts.journal
      [
        ("key", k);
        ("time", Printf.sprintf "%.6f" cs.cs_time);
        ("solved", string_of_bool cs.cs_solved);
        ("conflicts", string_of_int cs.cs_conflicts);
        ("decisions", string_of_int cs.cs_decisions);
        ("propagations", string_of_int cs.cs_propagations);
        ("learned", string_of_int cs.cs_learned);
        ("restarts", string_of_int cs.cs_restarts);
        ("subsumed", string_of_int cs.cs_subsumed);
        ("eliminated", string_of_int cs.cs_eliminated);
        ("probed", string_of_int cs.cs_probed);
        ("substituted", string_of_int cs.cs_substituted);
        ("proof_steps", string_of_int cs.cs_proof_steps);
        ("proof_checked", string_of_bool cs.cs_proof_checked);
      ]
  in
  (match opts.daemon with
  | Some socket ->
    (* --daemon: submit each cell as a job to one or more running coloring
       daemons (comma-separated sockets) instead of solving locally — an
       end-to-end exercise of the service's admission queue under
       sustained load. With several daemons the balancer round-robins
       cells across the fleet, ejects dead daemons with capped backoff,
       and re-dispatches stranded cells on the survivors. Timings are the
       daemon's reported solve times (its queue wait excluded); the
       engine counters live in the runner processes and are recorded as
       zero. Cell keys double as job ids, so resubmitting an interrupted
       sweep re-delivers finished cells from the fleet's journals instead
       of re-solving. *)
    let fleet =
      List.filter (fun s -> s <> "") (String.split_on_char ',' socket)
    in
    let balancer = Balancer.create fleet in
    let strategy_token = function
      | Types.Pbs2 -> "pbs2"
      | Types.Pbs1 -> "pbs"
      | Types.Galena -> "galena"
      | Types.Pueblo -> "pueblo"
      | Types.Cplex -> "cplex"
    in
    List.iter
      (fun c ->
        if not (interrupt_requested ()) then begin
          let b = Benchmarks.find c.c_name in
          let g = Lazy.force b.Benchmarks.graph in
          let job =
            {
              Frame.job_id = key c;
              dimacs = Colib_graph.Dimacs_col.to_string g;
              j_k = Some c.c_k;
              deadline = opts.timeout;
              strategies = strategy_token c.c_engine;
              sbp = Sbp.name c.c_sbp;
              instance_dependent = c.c_isd;
              j_seed = 0;
            }
          in
          match Balancer.submit balancer job with
          | Ok r ->
            let solved =
              r.Frame.r_outcome = "optimal" || r.Frame.r_outcome = "unsat"
            in
            finish (key c)
              {
                cs_time =
                  (if solved then r.Frame.r_time
                   else Float.max r.Frame.r_time opts.timeout);
                cs_solved = solved;
                cs_conflicts = 0;
                cs_decisions = 0;
                cs_propagations = 0;
                cs_learned = 0;
                cs_restarts = 0;
                cs_subsumed = 0;
                cs_eliminated = 0;
                cs_probed = 0;
                cs_substituted = 0;
                cs_proof_steps = 0;
                cs_proof_checked = false;
              }
          | Error { attempts; last } ->
            Printf.eprintf
              "bench: %s: daemon gave no answer after %d attempts (%s); \
               recorded as unsolved\n%!"
              (key c) attempts
              (Client.failure_to_string last);
            finish (key c)
              {
                cs_time = opts.timeout;
                cs_solved = false;
                cs_conflicts = 0;
                cs_decisions = 0;
                cs_propagations = 0;
                cs_learned = 0;
                cs_restarts = 0;
                cs_subsumed = 0;
                cs_eliminated = 0;
                cs_probed = 0;
                cs_substituted = 0;
                cs_proof_steps = 0;
                cs_proof_checked = false;
              }
        end)
      todo
  | None ->
  if opts.jobs <= 1 then begin
    let cache = ref None in
    List.iter
      (fun c ->
        if not (interrupt_requested ()) then begin
          let ck = (c.c_name, c.c_sbp, c.c_isd, c.c_k) in
          let f =
            match !cache with
            | Some (ck', f) when ck' = ck -> f
            | _ ->
              let b = Benchmarks.find c.c_name in
              let g = Lazy.force b.Benchmarks.graph in
              let f, _ =
                build_formula ~with_isd:c.c_isd ~node_budget:opts.node_budget
                  g ~k:c.c_k ~sbp:c.c_sbp
              in
              cache := Some (ck, f);
              f
          in
          let r =
            timed_solve ~ckpt:(ckpt c) ~inprocess:opts.inprocess c.c_engine f
              opts.timeout
          in
          if not (interrupt_requested ()) then finish (key c) r
        end)
      todo
  end
  else begin
    let arr = Array.of_list todo in
    let indices = List.init (Array.length arr) (fun i -> i) in
    (* the watchdog must outlive an honest cell: solve budget + symmetry
       detection + encoding slack *)
    let watchdog = opts.timeout +. 120.0 in
    ignore
      (Portfolio.map ~jobs:opts.jobs ~watchdog
         ~should_stop:interrupt_requested
         ~on_result:(fun i r ->
           let k = key arr.(i) in
           match r with
           | Ok cs -> finish k cs
           | Error m when contains_substring m cert_failure_marker ->
             Printf.eprintf "bench: %s\n%!" m;
             exit 3
           | Error m ->
             if not (interrupt_requested ()) then begin
               Printf.eprintf
                 "bench: %s: worker failed (%s); recorded as unsolved\n%!" k
                 m;
               finish k
                 {
                   cs_time = opts.timeout;
                   cs_solved = false;
                   cs_conflicts = 0;
                   cs_decisions = 0;
                   cs_propagations = 0;
                   cs_learned = 0;
                   cs_restarts = 0;
                   cs_subsumed = 0;
                   cs_eliminated = 0;
                   cs_probed = 0;
                   cs_substituted = 0;
                   cs_proof_steps = 0;
                   cs_proof_checked = false;
                 }
             end)
         (fun i ->
           solve_cell ~ckpt:(ckpt arr.(i)) ~inprocess:opts.inprocess
             ~node_budget:opts.node_budget ~timeout:opts.timeout arr.(i))
         indices)
  end);
  exit_interrupted ();
  results

let cell_result results ~section ~timeout c =
  match Hashtbl.find_opt results (cell_key ~section ~timeout c) with
  | Some r -> Some r
  | None -> None

(* ------------------------------------------------------------------ *)
(* Tables 3 / 4 *)

let table34 ~k opts =
  hr
    (Printf.sprintf
       "Table %s — runtimes and #solved, %d instances, K=%d, timeout %.1fs"
       (if k <= 20 then "3" else "4")
       (List.length (instances opts))
       k opts.timeout);
  Printf.printf
    "(Orig = no instance-dependent SBPs; w/SBPs = with the Shatter-style\n\
    \ flow. Paper shape: CDCL engines gain hugely from instance-dependent\n\
    \ SBPs; simple NU/SC beat complex CA/LI; the generic B&B baseline does\n\
    \ not profit. Timeouts count as the full budget.)\n\n";
  Printf.printf "%-9s" "SBP";
  List.iter
    (fun e -> Printf.printf " | %-21s" (Types.engine_name e))
    Types.all_engines;
  Printf.printf "\n%-9s" "";
  List.iter
    (fun _ -> Printf.printf " | %9s  %9s " "Orig" "w/SBPs")
    Types.all_engines;
  Printf.printf "\n%-9s" "";
  List.iter
    (fun _ -> Printf.printf " | %6s %2s  %6s %2s " "Tm" "#S" "Tm" "#S")
    Types.all_engines;
  print_newline ();
  let section = if k <= 20 then "table3" else "table4" in
  (* enumerate in (sbp, instance, isd) blocks so the sequential runner can
     reuse each built formula across the engines of a block *)
  let cell sbp b isd engine =
    { c_name = b.Benchmarks.name; c_sbp = sbp; c_isd = isd;
      c_engine = engine; c_k = k }
  in
  let cells =
    List.concat_map
      (fun sbp ->
        List.concat_map
          (fun b ->
            List.concat_map
              (fun isd ->
                List.map (fun e -> cell sbp b isd e) Types.all_engines)
              [ false; true ])
          (instances opts))
      Sbp.all
  in
  let results = run_cells ~section opts cells in
  List.iter
    (fun sbp ->
      Printf.printf "%-9s" (Sbp.name sbp);
      List.iter
        (fun engine ->
          let agg isd =
            List.fold_left
              (fun (t, s) b ->
                match
                  cell_result results ~section ~timeout:opts.timeout
                    (cell sbp b isd engine)
                with
                | Some cs ->
                  (t +. cs.cs_time, if cs.cs_solved then s + 1 else s)
                | None -> (t, s))
              (0.0, 0) (instances opts)
          in
          let t0, s0 = agg false in
          let t1, s1 = agg true in
          Printf.printf " | %6.1f %2d  %6.1f %2d " t0 s0 t1 s1)
        Types.all_engines;
      print_newline ())
    Sbp.all

(* ------------------------------------------------------------------ *)
(* Table 5: queens, per instance, including the legacy PBS *)

let table5 opts =
  hr
    (Printf.sprintf "Table 5 — queens family, per instance, timeout %.1fs"
       opts.timeout);
  Printf.printf
    "(paper appendix shape: instance-dependent SBPs rescue the no-SBP and SC\n\
    \ rows; LI times out everywhere on the larger boards)\n";
  let engines = Types.Pbs1 :: Types.all_engines in
  let queens =
    List.filter
      (fun b -> b.Benchmarks.family = Benchmarks.Queens)
      (instances opts)
  in
  let cell b sbp isd engine =
    { c_name = b.Benchmarks.name; c_sbp = sbp; c_isd = isd;
      c_engine = engine; c_k = 20 }
  in
  let cells =
    List.concat_map
      (fun b ->
        List.concat_map
          (fun sbp ->
            List.concat_map
              (fun isd -> List.map (fun e -> cell b sbp isd e) engines)
              [ false; true ])
          Sbp.all)
      queens
  in
  let results = run_cells ~section:"table5" opts cells in
  List.iter
    (fun b ->
      Printf.printf "\n%s (K=20)\n" b.Benchmarks.name;
      Printf.printf "  %-9s" "SBP";
      List.iter
        (fun e -> Printf.printf " | %-17s" (Types.engine_name e))
        engines;
      Printf.printf "\n  %-9s" "";
      List.iter (fun _ -> Printf.printf " | %7s  %7s " "Orig" "w/SBPs") engines;
      print_newline ();
      List.iter
        (fun sbp ->
          Printf.printf "  %-9s" (Sbp.name sbp);
          List.iter
            (fun engine ->
              let show isd =
                match
                  cell_result results ~section:"table5" ~timeout:opts.timeout
                    (cell b sbp isd engine)
                with
                | Some cs when cs.cs_solved -> Printf.sprintf "%.2f" cs.cs_time
                | Some _ -> "T/O"
                | None -> "-"
              in
              Printf.printf " | %7s  %7s " (show false) (show true))
            engines;
          print_newline ())
        Sbp.all)
    queens

(* ------------------------------------------------------------------ *)
(* Figure 1: the worked example *)

let figure1 _opts =
  hr "Figure 1 — instance-independent SBPs on the worked example";
  Printf.printf
    "Graph: V1 V2 V3 form a triangle, V4 adjacent to V3 (4 vertices, K=4).\n\
     Counting the proper 3-color assignments each construction permits:\n\n";
  let g = Graph.of_edges 4 [ (0, 1); (0, 2); (1, 2); (2, 3) ] in
  let count sbp =
    let enc = Encoding.encode g ~k:4 in
    Sbp.add sbp enc;
    let f = enc.Encoding.formula in
    let permitted = ref 0 and total = ref 0 in
    let coloring = Array.make 4 0 in
    let rec go v =
      if v = 4 then begin
        if
          Graph.is_proper_coloring g coloring
          && Graph.count_colors coloring = 3
        then begin
          incr total;
          let eng = Engine.create Types.Pbs2 (Formula.num_vars f) in
          Engine.add_formula eng f;
          for u = 0 to 3 do
            for j = 0 to 3 do
              Engine.add_clause eng
                [
                  (if coloring.(u) = j then Colib_sat.Lit.pos
                     enc.Encoding.x.(u).(j)
                   else Colib_sat.Lit.neg enc.Encoding.x.(u).(j));
                ]
            done
          done;
          match Engine.solve eng (Types.within_seconds 5.0) with
          | Types.Sat _ -> incr permitted
          | _ -> ()
        end
      end
      else
        for c = 0 to 3 do
          coloring.(v) <- c;
          go (v + 1)
        done
    in
    go 0;
    (!permitted, !total)
  in
  List.iter
    (fun sbp ->
      let p, t = count sbp in
      Printf.printf "  %-8s permits %2d of the %2d optimal (3-color) \
                     assignments\n"
        (Sbp.name sbp) p t)
    [ Sbp.No_sbp; Sbp.Nu; Sbp.Ca; Sbp.Li ];
  Printf.printf
    "\n(paper: NU restricts null colors to the tail; CA also orders by\n\
     independent-set size; LI leaves exactly one assignment per partition —\n\
     the two remaining assignments correspond to the two ways of placing V4)\n"

(* ------------------------------------------------------------------ *)
(* Ablations *)

let ablation opts =
  hr "Ablation — design choices of this implementation";
  let bench_one label f =
    let t0 = Colib_clock.Mclock.now () in
    let r = Optimize.solve_formula Types.Pbs2 f (Types.within_seconds (10.0 *. opts.timeout)) in
    Printf.printf "  %-34s %s in %.2fs\n" label
      (Format.asprintf "%a" Optimize.pp_result r)
      (Colib_clock.Mclock.now () -. t0)
  in
  let anna = Lazy.force (Benchmarks.find "anna").Benchmarks.graph in

  Printf.printf "\n[A] lex-leader chain depth (anna, K=20, SC + inst-dep):\n";
  List.iter
    (fun depth ->
      let enc = Encoding.encode anna ~k:20 in
      Sbp.add Sbp.Sc enc;
      let f = enc.Encoding.formula in
      let _, perms = Formula_graph.detect ~node_budget:opts.node_budget f in
      let n = Lex_leader.add_all ~depth f perms in
      bench_one (Printf.sprintf "depth %-8d (%5d SBP clauses)" depth n) f)
    [ 1; 4; 16; 64; max_int ];

  Printf.printf
    "\n[B] variable numbering: color-usage variables first vs last\n\
    \    (anna, K=20, SC + inst-dep SBPs — the paper's best configuration):\n";
  List.iter
    (fun y_first ->
      let enc = Encoding.encode ~y_first anna ~k:20 in
      Sbp.add Sbp.Sc enc;
      let f = enc.Encoding.formula in
      let _, perms = Formula_graph.detect ~node_budget:opts.node_budget f in
      let _ = Lex_leader.add_all f perms in
      bench_one (if y_first then "y first (ours)" else "y last (naive)") f)
    [ true; false ];

  Printf.printf
    "\n[C] what breaks the pigeonhole: K22 clique, 20 colors (chi = 22):\n";
  let k22 = Generators.complete 22 in
  List.iter
    (fun (label, sbp, isd) ->
      let f, dt =
        build_formula ~with_isd:isd ~node_budget:opts.node_budget k22 ~k:20
          ~sbp
      in
      Printf.printf "  (detection %.2fs)" dt;
      bench_one label f)
    [
      ("no SBPs", Sbp.No_sbp, false);
      ("NU+SC (inst-independent only)", Sbp.Nu_sc, false);
      ("inst-dependent SBPs", Sbp.No_sbp, true);
    ];

  Printf.printf "\n[D] engine policy spread on queen7_7 (K=20, SC + inst-dep):\n";
  let q7 = Lazy.force (Benchmarks.find "queen7_7").Benchmarks.graph in
  let f, _ = build_formula ~with_isd:true ~node_budget:opts.node_budget q7 ~k:20 ~sbp:Sbp.Sc in
  List.iter
    (fun engine ->
      let cs = timed_solve engine f (10.0 *. opts.timeout) in
      Printf.printf "  %-10s %s in %.2fs\n" (Types.engine_name engine)
        (if cs.cs_solved then "solved" else "timeout")
        cs.cs_time)
    (Types.Pbs1 :: Types.all_engines);

  Printf.printf
    "\n[E] one optimization run vs repeated decision solving (Section 4.1):\n";
  List.iter
    (fun name ->
      let g = Lazy.force (Benchmarks.find name).Benchmarks.graph in
      let opt = Colib_core.Exact_coloring.chromatic_number
          ~timeout:(10.0 *. opts.timeout) g in
      let lin = Colib_core.Exact_coloring.chromatic_number_by_search
          ~strategy:`Linear ~timeout:(10.0 *. opts.timeout) g in
      let bin = Colib_core.Exact_coloring.chromatic_number_by_search
          ~strategy:`Binary ~timeout:(10.0 *. opts.timeout) g in
      let show (a : Colib_core.Exact_coloring.answer) =
        Printf.sprintf "%s in %5.2fs"
          (match a.Colib_core.Exact_coloring.chromatic with
          | Some c -> Printf.sprintf "chi=%d" c
          | None -> Printf.sprintf "%d..%d" a.Colib_core.Exact_coloring.lower
                      a.Colib_core.Exact_coloring.upper)
          a.Colib_core.Exact_coloring.time
      in
      Printf.printf "  %-10s ILP-optimize %s | linear %s | binary %s\n" name
        (show opt) (show lin) (show bin))
    [ "myciel4"; "myciel5"; "queen6_6" ];

  Printf.printf
    "\n[F] the LI construction vs its linear prefix reformulation\n\
    \    (same orderings, same completeness, O(n^2 K) vs O(nK) clauses):\n";
  List.iter
    (fun name ->
      let g = Lazy.force (Benchmarks.find name).Benchmarks.graph in
      List.iter
        (fun sbp ->
          let enc = Encoding.encode g ~k:20 in
          Sbp.add sbp enc;
          let st = Formula.stats enc.Encoding.formula in
          let cs =
            timed_solve Types.Pbs2 enc.Encoding.formula (10.0 *. opts.timeout)
          in
          Printf.printf "  %-10s %-7s %8d clauses: %s in %.2fs\n" name
            (Sbp.name sbp) st.Formula.cnf_clauses
            (if cs.cs_solved then "solved" else "timeout")
            cs.cs_time)
        [ Sbp.Li; Sbp.Li_prefix ])
    [ "anna"; "miles250"; "queen6_6" ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks *)

let micro _opts =
  hr "Micro-benchmarks (bechamel; ns/run of each pipeline stage)";
  let open Bechamel in
  let open Toolkit in
  let myciel5 = Generators.mycielski 5 in
  let q6 = Generators.queens ~rows:6 ~cols:6 in
  let t_encode =
    Test.make ~name:"encode myciel5 K=20" (Staged.stage (fun () ->
        ignore (Sys.opaque_identity (Encoding.encode myciel5 ~k:20))))
  in
  let t_sbp =
    Test.make ~name:"NU+SC SBPs myciel5 K=20" (Staged.stage (fun () ->
        let enc = Encoding.encode myciel5 ~k:20 in
        Sbp.add Sbp.Nu_sc enc))
  in
  let enc_fixed = Encoding.encode q6 ~k:8 in
  let t_fgraph =
    Test.make ~name:"formula graph queen6_6 K=8" (Staged.stage (fun () ->
        ignore (Sys.opaque_identity (Formula_graph.build enc_fixed.Encoding.formula))))
  in
  let fg = Formula_graph.build enc_fixed.Encoding.formula in
  let t_refine =
    Test.make ~name:"initial refinement queen6_6 K=8" (Staged.stage (fun () ->
        ignore (Sys.opaque_identity (Colib_symmetry.Refine.initial (Formula_graph.graph fg)))))
  in
  let t_detect =
    Test.make ~name:"automorphisms queen6_6 K=8" (Staged.stage (fun () ->
        ignore (Sys.opaque_identity (Auto.automorphisms (Formula_graph.graph fg)))))
  in
  let q5 = Generators.queens ~rows:5 ~cols:5 in
  let t_solve =
    Test.make ~name:"solve queen5_5 K=6 (SC+isd)" (Staged.stage (fun () ->
        let f, _ = build_formula ~with_isd:true ~node_budget:50_000 q5 ~k:6 ~sbp:Sbp.Sc in
        ignore (Sys.opaque_identity (Optimize.solve_formula Types.Pbs2 f (Types.within_seconds 10.0)))))
  in
  let t_dsatur =
    Test.make ~name:"DSATUR miles250" (Staged.stage (fun () ->
        let g = Lazy.force (Benchmarks.find "miles250").Benchmarks.graph in
        ignore (Sys.opaque_identity (Dsatur.dsatur g))))
  in
  let tests =
    Test.make_grouped ~name:"colib"
      [ t_encode; t_sbp; t_fgraph; t_refine; t_detect; t_solve; t_dsatur ]
  in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~stabilize:false ()
    in
    let raw = Benchmark.all cfg instances tests in
    Analyze.all ols Instance.monotonic_clock raw
  in
  let results = benchmark () in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some (t :: _) -> Printf.sprintf "%12.0f ns/run (%8.3f ms)" t (t /. 1e6)
        | _ -> "            n/a"
      in
      Printf.printf "  %-32s %s\n" name est)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* atomic table emission: with --out-dir each section prints into
   <dir>/<section>.txt.tmp with stdout redirected, and the file is renamed
   to its final name only after the section completes. An interrupt,
   certification failure, or crash mid-section exits without the rename,
   so a published table is always complete. *)

let with_stdout_to path f =
  let tmp = path ^ ".tmp" in
  let fd =
    Colib_io.Durable.openfile tmp
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  flush stdout;
  let saved = Unix.dup Unix.stdout in
  Unix.dup2 fd Unix.stdout;
  let restore () =
    flush stdout;
    Unix.dup2 saved Unix.stdout;
    Unix.close saved;
    (try Colib_io.Durable.fsync ~path:tmp fd with Unix.Unix_error _ -> ());
    Unix.close fd
  in
  (match f () with
  | () -> restore ()
  | exception e ->
    restore ();
    raise e);
  Colib_io.Durable.rename tmp path

let emit opts name f =
  match opts.out_dir with
  | None -> f ()
  | Some dir ->
    let path = Filename.concat dir (name ^ ".txt") in
    with_stdout_to path f;
    Printf.eprintf "bench: wrote %s\n%!" path

let run_section opts section =
  let sections =
    match section with
    | "table1" | "table2" | "table3" | "table4" | "table5" | "figure1"
    | "ablation" | "micro" ->
      [ section ]
    | "all" ->
      [ "table1"; "figure1"; "table2"; "table3"; "table4"; "table5";
        "ablation"; "micro" ]
    | s ->
      Printf.eprintf
        "unknown section %S (expected table1..table5, figure1, ablation, \
         micro, all)\n"
        s;
      exit 1
  in
  List.iter
    (fun name ->
      exit_interrupted ();
      emit opts name (fun () ->
          match name with
          | "table1" -> table1 opts
          | "table2" -> table2 opts
          | "table3" -> table34 ~k:20 opts
          | "table4" -> table34 ~k:30 opts
          | "table5" -> table5 opts
          | "figure1" -> figure1 opts
          | "ablation" -> ablation opts
          | _ -> micro opts))
    sections

let mkdir_p dir =
  try Unix.mkdir dir 0o755 with
  | Unix.Unix_error (Unix.EEXIST, _, _) -> ()

(* machine-readable dump of every sweep cell of this run: per-cell wall
   time, the engine's counters, and the proof-trace size + replay verdict.
   Written via temp file + rename so readers never see a torn file. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* [schema]: stamped into the canonical BENCH.json so downstream readers can
   detect format changes; the legacy BENCH_PR3.json stays untagged for
   byte-compatibility with existing consumers *)
let write_bench_json ?schema path =
  let cells = List.rev !measured_cells in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  (match schema with
  | Some s -> Printf.bprintf b "  \"schema\": \"%s\",\n" (json_escape s)
  | None -> ());
  Buffer.add_string b "  \"cells\": [";
  List.iteri
    (fun i (k, cs) ->
      if i > 0 then Buffer.add_string b ",";
      Printf.bprintf b
        "\n    {\"key\": \"%s\", \"time\": %.6f, \"solved\": %b, \
         \"conflicts\": %d, \"decisions\": %d, \"propagations\": %d, \
         \"learned\": %d, \"restarts\": %d, \"subsumed\": %d, \
         \"eliminated\": %d, \"probed\": %d, \"substituted\": %d, \
         \"proof_steps\": %d, \"proof_checked\": %b}"
        (json_escape k) cs.cs_time cs.cs_solved cs.cs_conflicts
        cs.cs_decisions cs.cs_propagations cs.cs_learned cs.cs_restarts
        cs.cs_subsumed cs.cs_eliminated cs.cs_probed cs.cs_substituted
        cs.cs_proof_steps cs.cs_proof_checked)
    cells;
  Printf.bprintf b "\n  ],\n  \"num_cells\": %d\n}\n" (List.length cells);
  Colib_io.Durable.write_file_atomic ~path (Buffer.contents b);
  Printf.eprintf "bench: wrote %s (%d cells)\n%!" path (List.length cells)

let () =
  let open Cmdliner in
  let section =
    Arg.(value & pos 0 string "all" & info [] ~docv:"SECTION")
  in
  let timeout =
    Arg.(
      value & opt float 2.0
      & info [ "timeout" ] ~docv:"S" ~doc:"Per-solve budget in seconds.")
  in
  let node_budget =
    Arg.(
      value & opt int 200_000
      & info [ "node-budget" ] ~docv:"N"
          ~doc:"Automorphism search node budget.")
  in
  let only =
    Arg.(
      value
      & opt (list string) []
      & info [ "instances" ] ~docv:"NAMES"
          ~doc:"Comma-separated instance subset (default: all 20).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Run sweep cells (tables 3/4/5) in up to $(docv) supervised \
             worker processes; a crashed or hung worker is contained and \
             its cell recorded as unsolved.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Reload the run journal, skip every already-completed sweep \
             cell, and resume partially-solved cells mid-search from their \
             snapshots in runs/<run-id>.ckpt/ (after a crash or interrupt). \
             Without this flag the journal is restarted.")
  in
  let run_id =
    Arg.(
      value & opt string "bench"
      & info [ "run-id" ] ~docv:"ID"
          ~doc:"Journal name: cells are recorded in runs/$(docv).jsonl.")
  in
  let out_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "out-dir" ] ~docv:"DIR"
          ~doc:
            "Write each section's table atomically to $(docv)/<section>.txt \
             (temp file + rename) instead of stdout.")
  in
  let no_inprocessing =
    Arg.(
      value & flag
      & info [ "no-inprocessing" ]
          ~doc:
            "Disable the engines' inprocessing ladder (subsumption, bounded \
             variable elimination, probing, equivalent-literal \
             substitution) for every sweep cell — the before side of the \
             BENCH_INPROC.json delta.")
  in
  let daemon =
    Arg.(
      value
      & opt (some string) None
      & info [ "daemon" ] ~docv:"SOCKET,SOCKET,..."
          ~doc:
            "Submit sweep cells (tables 3/4/5) as jobs to the coloring \
             daemon(s) listening on $(docv) (paths, or tcp:PORT each) \
             instead of solving locally — exercising the admission queue \
             under sustained load. Several sockets are balanced: cells \
             round-robin across the fleet, dead daemons are ejected with \
             capped backoff, and stranded cells re-dispatch to the \
             survivors. Cell keys double as job ids, so re-running a sweep \
             re-delivers finished cells from the fleet's journals.")
  in
  let run section timeout node_budget only jobs resume run_id out_dir daemon
      no_inprocessing =
    install_signal_handlers ();
    mkdir_p "runs";
    let journal_path = Filename.concat "runs" (run_id ^ ".jsonl") in
    let journal =
      if resume then Journal.load journal_path else Journal.create journal_path
    in
    (match out_dir with Some d -> mkdir_p d | None -> ());
    let ckpt_dir = Filename.concat "runs" (run_id ^ ".ckpt") in
    let opts =
      { timeout; node_budget; only; jobs; journal; out_dir; ckpt_dir; resume;
        daemon; inprocess = not no_inprocessing }
    in
    let t0 = Colib_clock.Mclock.now () in
    (try run_section opts section
     with Failure m when contains_substring m cert_failure_marker ->
       Printf.eprintf "bench: %s\n%!" m;
       exit 3);
    write_bench_json "BENCH_PR3.json";
    write_bench_json ~schema:"colib-bench-cells/1" "BENCH.json";
    Printf.printf "\ntotal bench wall time: %.1fs\n" (Colib_clock.Mclock.now () -. t0)
  in
  let cmd =
    Cmd.v
      (Cmd.info "bench" ~doc:"regenerate the paper's tables and figures")
      Term.(
        const run $ section $ timeout $ node_budget $ only $ jobs $ resume
        $ run_id $ out_dir $ daemon $ no_inprocessing)
  in
  exit (Cmd.eval cmd)
