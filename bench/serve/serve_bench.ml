(* Serve-path load harness (DESIGN.md §15).

   Drives many concurrent clients through the frame protocol against a
   supervised daemon and measures end-to-end request latency in three
   phases over the same request schedule:

     warm          — the production config: warm worker pool + result
                     cache + coalescing, WITH a mid-run daemon SIGKILL
                     (healed by the supervisor) and seeded kill-only
                     pool-worker chaos, so the numbers include recovery;
     warm_nocache  — pool on, cache off: the pure fork-elimination win,
                     no faults;
     cold          — pool 0, cache off: the original cold-fork-per-job
                     serve path, no faults.

   Every request must produce exactly one verdict (a result or a typed
   failure); a phase with zero ok requests fails the run (exit 1). The
   summary — p50/p95/p99/mean latency per phase, warm-vs-cold ratios,
   cache hit rate, shed rate, pool restart/recycle counters — is written
   as schema-tagged JSON (colib-bench-serve/1) to --out.

   Cache/pool counters come from the final daemon life's Health report:
   the mid-run SIGKILL resets in-memory counters, so they cover the tail
   of the phase, not its whole load (the journal-backed cache itself
   survives the kill — that is the point).

   Pool chaos is kill-only on purpose: a SIGSTOPped worker whose daemon
   is SIGKILLed mid-bench would orphan (nobody left to resume or reap
   it). *)

module Generators = Colib_graph.Generators
module Dimacs_col = Colib_graph.Dimacs_col
module Chaos = Colib_check.Chaos
module Frame = Colib_portfolio.Frame
module P = Colib_portfolio.Portfolio
module Server = Colib_server.Server
module Client = Colib_server.Client
module Supervise = Colib_server.Supervise
module Durable = Colib_io.Durable
module Mclock = Colib_clock.Mclock

let seed = ref 1
let clients = ref 6
let requests = ref 25
let distinct = ref 4
let kills = ref 1
let out = ref "BENCH_SERVE.json"
let dir = ref ""

let args =
  [
    ("--seed", Arg.Set_int seed, "INT  chaos seed (default 1)");
    ("--clients", Arg.Set_int clients, "N  concurrent clients (default 6)");
    ( "--requests",
      Arg.Set_int requests,
      "N  requests per client (default 25)" );
    ( "--distinct",
      Arg.Set_int distinct,
      "N  distinct instances cycled through (default 4)" );
    ( "--kills",
      Arg.Set_int kills,
      "N  mid-run daemon SIGKILLs in the warm phase (default 1)" );
    ("--out", Arg.Set_string out, "FILE  JSON report (default BENCH_SERVE.json)");
    ( "--dir",
      Arg.Set_string dir,
      "PATH  work dir (default: fresh under TMPDIR, removed on success)" );
  ]

let usage = "serve_bench [--seed N] [--clients C] [--requests R] ..."

let rec mkdir_p p =
  if not (Sys.file_exists p) then begin
    mkdir_p (Filename.dirname p);
    try Unix.mkdir p 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

(* D distinct instances: odd cycles (chi = 3), trivially fast solves, so
   the latency measured is the serve path, not the solver *)
let instances d =
  Array.init (max 1 d) (fun i ->
      Dimacs_col.to_string (Generators.cycle ((2 * i) + 5)))

(* ------------------------------------------------------------------ *)

type phase_stats = {
  ph_name : string;
  ph_pool : int;
  ph_cache : bool;
  ph_lat_ms : float array; (* ok-request latencies, sorted ascending *)
  ph_ok : int;
  ph_shed : int;
  ph_failed : int;
  ph_kills : int;
  ph_health : Frame.health option; (* final daemon life *)
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1))

let mean a =
  if Array.length a = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let read_pid pid_file =
  match open_in pid_file with
  | ic ->
    let p = try int_of_string (String.trim (input_line ic)) with _ -> -1 in
    close_in_noerr ic;
    p
  | exception Sys_error _ -> -1

(* one phase: supervised daemon + C forked clients x R sequential requests
   each, latencies written one line per request to per-client files *)
let run_phase ~root ~name ~pool ~cache ~with_faults ~texts =
  let pdir = Filename.concat root name in
  mkdir_p pdir;
  let socket = Filename.concat pdir "sock" in
  let journal_path = Filename.concat pdir "journal.jsonl" in
  let ckpt_dir = Filename.concat pdir "ckpt" in
  let pid_file = Filename.concat pdir "daemon.pid" in
  let log_path = Filename.concat pdir "daemon.log" in
  let c = !clients and r = !requests in
  let pool_faults =
    if with_faults then
      let seeded = Chaos.worker_seeded ~seed:(!seed * 7919) ~p:0.05 in
      Some
        (fun idx ->
          match Chaos.worker_fault_for seeded idx with
          | Some _ -> Some Chaos.Worker_kill
          | None -> None)
    else None
  in
  let cfg =
    Server.config ~max_queue:(max 16 (c * 2)) ~max_running:2 ~io_timeout:5.0
      ~drain_grace:10.0 ~default_strategies:[ P.Dsatur_strategy ]
      ~pool_size:pool ~cache ?pool_faults ~socket ~journal_path ~ckpt_dir ()
  in
  let sup =
    match Unix.fork () with
    | 0 ->
      let logfd =
        Unix.openfile log_path
          [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
          0o644
      in
      Unix.dup2 logfd Unix.stderr;
      Unix.dup2 logfd Unix.stdout;
      Unix.close logfd;
      let scfg =
        Supervise.config ~backoff:0.05 ~backoff_cap:0.5 ~max_restarts:1000
          ~window:5.0 ~pid_file ~verbose:true ()
      in
      Unix._exit (Supervise.run scfg ~start:(fun () -> Server.run cfg))
    | pid -> pid
  in
  let fail_phase msg =
    (try Unix.kill sup Sys.sigkill with Unix.Unix_error _ -> ());
    Printf.eprintf "serve_bench: %s: %s\n%!" name msg;
    exit 1
  in
  let ready_deadline = Mclock.now () +. 15.0 in
  let rec wait_ready () =
    if Mclock.now () > ready_deadline then fail_phase "daemon never came up"
    else
      match Client.ping ~timeout:0.5 ~socket () with
      | Ok () -> ()
      | Error _ ->
        Unix.sleepf 0.05;
        wait_ready ()
  in
  wait_ready ();
  let lat_file ci = Filename.concat pdir (Printf.sprintf "client-%d" ci) in
  let workers =
    List.init c (fun ci ->
        match Unix.fork () with
        | 0 ->
          let oc = open_out (lat_file ci) in
          for ri = 0 to r - 1 do
            let text = texts.((ci + (ri * c)) mod Array.length texts) in
            let j =
              {
                Frame.job_id =
                  Printf.sprintf "sb-%s-%d-%d-%d" name !seed ci ri;
                dimacs = text;
                j_k = None;
                deadline = 30.0;
                strategies = "dsatur";
                sbp = "";
                instance_dependent = false;
                j_seed = 0;
              }
            in
            let t0 = Mclock.now () in
            let klass =
              match
                Client.submit ~retries:8 ~backoff:0.05 ~backoff_cap:0.5
                  ~socket j
              with
              | Ok _ -> "ok"
              | Error { last = Client.Overloaded _ | Client.Unavailable _; _ }
                -> "shed"
              | Error _ -> "failed"
            in
            let dt_ms = (Mclock.now () -. t0) *. 1000.0 in
            Printf.fprintf oc "%.4f|%s\n" dt_ms klass;
            flush oc
          done;
          close_out_noerr oc;
          Unix._exit 0
        | pid -> pid)
  in
  (* mid-run SIGKILLs: wait until a third of the load has verdicts, then
     kill the daemon through the supervisor's pid file *)
  let total = c * r in
  let count_done () =
    let n = ref 0 in
    for ci = 0 to c - 1 do
      match open_in (lat_file ci) with
      | ic ->
        (try
           while true do
             ignore (input_line ic : string);
             incr n
           done
         with End_of_file -> ());
        close_in_noerr ic
      | exception Sys_error _ -> ()
    done;
    !n
  in
  let kills_done = ref 0 in
  let planned_kills = if with_faults then !kills else 0 in
  for k = 1 to planned_kills do
    let threshold = total * k / (planned_kills + 2) in
    let deadline = Mclock.now () +. 60.0 in
    let rec wait_threshold () =
      if Mclock.now () > deadline then ()
      else if count_done () >= threshold then begin
        let dpid = read_pid pid_file in
        if dpid > 0 then begin
          (try Unix.kill dpid Sys.sigkill with Unix.Unix_error _ -> ());
          incr kills_done
        end
      end
      else begin
        Unix.sleepf 0.02;
        wait_threshold ()
      end
    in
    wait_threshold ()
  done;
  List.iter
    (fun pid ->
      match Unix.waitpid [] pid with
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> (
        try ignore (Unix.waitpid [] pid : int * Unix.process_status)
        with Unix.Unix_error _ -> ()))
    workers;
  (* final-life operational counters, then a graceful drain *)
  let health =
    match Client.health ~timeout:2.0 ~socket () with
    | Ok h -> Some h
    | Error _ -> None
  in
  (try Unix.kill sup Sys.sigterm with Unix.Unix_error _ -> ());
  (match Unix.waitpid [] sup with
  | _, Unix.WEXITED 0 -> ()
  | _, st ->
    let s =
      match st with
      | Unix.WEXITED code -> Printf.sprintf "exited %d" code
      | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
      | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s
    in
    Printf.eprintf "serve_bench: %s: supervisor did not drain cleanly (%s)\n%!"
      name s
  | exception Unix.Unix_error _ -> ());
  (* gather verdicts *)
  let lats = ref [] and ok = ref 0 and shed = ref 0 and failed = ref 0 in
  for ci = 0 to c - 1 do
    match open_in (lat_file ci) with
    | ic ->
      (try
         while true do
           let line = input_line ic in
           match String.split_on_char '|' line with
           | [ ms; "ok" ] ->
             incr ok;
             lats := float_of_string ms :: !lats
           | [ _; "shed" ] -> incr shed
           | _ -> incr failed
         done
       with End_of_file -> ());
      close_in_noerr ic
    | exception Sys_error _ -> ()
  done;
  let missing = total - (!ok + !shed + !failed) in
  if missing <> 0 then
    fail_phase (Printf.sprintf "%d request(s) produced no verdict" missing);
  if !ok = 0 then fail_phase "zero ok requests — nothing was measured";
  let sorted = Array.of_list !lats in
  Array.sort compare sorted;
  Printf.printf
    "serve_bench: %-12s %4d ok %3d shed %3d failed | p50 %7.2fms p95 %7.2fms \
     p99 %7.2fms | %d kill(s)\n%!"
    name !ok !shed !failed (percentile sorted 0.50) (percentile sorted 0.95)
    (percentile sorted 0.99) !kills_done;
  {
    ph_name = name;
    ph_pool = pool;
    ph_cache = cache;
    ph_lat_ms = sorted;
    ph_ok = !ok;
    ph_shed = !shed;
    ph_failed = !failed;
    ph_kills = !kills_done;
    ph_health = health;
  }

(* ------------------------------------------------------------------ *)

let phase_json b ph =
  let p q = percentile ph.ph_lat_ms q in
  Printf.bprintf b
    "    \"%s\": {\n\
    \      \"pool\": %d,\n\
    \      \"cache\": %b,\n\
    \      \"requests\": %d,\n\
    \      \"ok\": %d,\n\
    \      \"shed\": %d,\n\
    \      \"failed\": %d,\n\
    \      \"shed_rate\": %.4f,\n\
    \      \"daemon_kills\": %d,\n\
    \      \"p50_ms\": %.4f,\n\
    \      \"p95_ms\": %.4f,\n\
    \      \"p99_ms\": %.4f,\n\
    \      \"mean_ms\": %.4f"
    ph.ph_name ph.ph_pool ph.ph_cache
    (ph.ph_ok + ph.ph_shed + ph.ph_failed)
    ph.ph_ok ph.ph_shed ph.ph_failed
    (float_of_int ph.ph_shed
    /. float_of_int (max 1 (ph.ph_ok + ph.ph_shed + ph.ph_failed)))
    ph.ph_kills (p 0.50) (p 0.95) (p 0.99) (mean ph.ph_lat_ms);
  (match ph.ph_health with
  | Some h ->
    let hits = h.Frame.h_cache_hits and misses = h.Frame.h_cache_misses in
    Printf.bprintf b
      ",\n\
      \      \"final_life\": {\n\
      \        \"cache_hits\": %d,\n\
      \        \"cache_misses\": %d,\n\
      \        \"cache_hit_rate\": %.4f,\n\
      \        \"coalesced\": %d,\n\
      \        \"pool_warm\": %d,\n\
      \        \"pool_restarts\": %d,\n\
      \        \"pool_recycles\": %d\n\
      \      }"
      hits misses
      (float_of_int hits /. float_of_int (max 1 (hits + misses)))
      h.Frame.h_coalesced h.Frame.h_pool_warm h.Frame.h_pool_restarts
      h.Frame.h_pool_recycles
  | None -> ());
  Printf.bprintf b "\n    }"

let () =
  Arg.parse args (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let keep_dir = !dir <> "" in
  let root =
    if keep_dir then !dir
    else
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "colib_serve_bench_%d_%d" !seed (Unix.getpid ()))
  in
  rm_rf root;
  mkdir_p root;
  let texts = instances !distinct in
  Printf.printf
    "serve_bench: seed %d, %d clients x %d requests, %d distinct instances\n%!"
    !seed !clients !requests !distinct;
  let warm =
    run_phase ~root ~name:"warm" ~pool:2 ~cache:true ~with_faults:true ~texts
  in
  let warm_nocache =
    run_phase ~root ~name:"warm_nocache" ~pool:2 ~cache:false
      ~with_faults:false ~texts
  in
  let cold =
    run_phase ~root ~name:"cold" ~pool:0 ~cache:false ~with_faults:false
      ~texts
  in
  let ratio a b =
    let pa = percentile a.ph_lat_ms 0.50 and pb = percentile b.ph_lat_ms 0.50 in
    if pa <= 0.0 then 0.0 else pb /. pa
  in
  let b = Buffer.create 4096 in
  Printf.bprintf b "{\n  \"schema\": \"colib-bench-serve/1\",\n";
  Printf.bprintf b "  \"seed\": %d,\n  \"clients\": %d,\n" !seed !clients;
  Printf.bprintf b "  \"requests_per_client\": %d,\n" !requests;
  Printf.bprintf b "  \"distinct_instances\": %d,\n" !distinct;
  Printf.bprintf b "  \"phases\": {\n";
  phase_json b warm;
  Printf.bprintf b ",\n";
  phase_json b warm_nocache;
  Printf.bprintf b ",\n";
  phase_json b cold;
  Printf.bprintf b "\n  },\n";
  Printf.bprintf b "  \"cold_over_warm_p50\": %.4f,\n" (ratio warm cold);
  Printf.bprintf b "  \"cold_over_warm_nocache_p50\": %.4f\n"
    (ratio warm_nocache cold);
  Printf.bprintf b "}\n";
  Durable.write_file_atomic ~path:!out (Buffer.contents b);
  Printf.printf "serve_bench: wrote %s\n%!" !out;
  if not keep_dir then rm_rf root;
  exit 0
