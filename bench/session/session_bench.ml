(* Incremental-session latency bench (DESIGN.md §18).

   Replays seeded dynamic-graph edit streams and measures, at every
   query point, the cost of answering the chromatic-number query two
   ways over the SAME graph state:

     warm — the persistent session: learned clauses, the previous
            answer's bound, and the solver's saved phases all survive
            the edits between queries;
     cold — a from-scratch re-solve: fresh session, replay the edit
            prefix, one query (what a non-incremental pipeline pays on
            every dynamic-graph change).

   Both answers must be certified and must agree on chi, so the bench
   doubles as a differential check; any disagreement or uncertified
   answer fails the run (exit 1). The summary — p50/p95/mean latency
   per mode, the cold-over-warm p50 ratio, conflict totals, and the
   fraction of warm queries actually served incrementally — is written
   as schema-tagged JSON (colib-bench-session/1) to --out. *)

module Session = Colib_session.Session
module Durable = Colib_io.Durable
module Mclock = Colib_clock.Mclock

let seed = ref 1
let graphs = ref 5
let edits = ref 40
let query_every = ref 4
let vertices = ref 10
let out = ref "BENCH_SESSION.json"

let args =
  [
    ("--seed", Arg.Set_int seed, "INT  edit-stream seed (default 1)");
    ("--graphs", Arg.Set_int graphs, "N  independent edit streams (default 5)");
    ("--edits", Arg.Set_int edits, "N  edits per stream (default 40)");
    ( "--query-every",
      Arg.Set_int query_every,
      "N  query after every N edits (default 4)" );
    ( "--vertices",
      Arg.Set_int vertices,
      "N  vertex capacity per stream (default 10)" );
    ( "--out",
      Arg.Set_string out,
      "FILE  JSON report (default BENCH_SESSION.json)" );
  ]

let usage = "session_bench [--seed N] [--graphs G] [--edits E] ..."

let die fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "session_bench: %s\n%!" msg;
      exit 1)
    fmt

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1))

let mean a =
  if Array.length a = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let cap () =
  {
    Session.max_vertices = !vertices;
    max_colors = !vertices;
    max_edges = !vertices * (!vertices - 1) / 2;
  }

(* One seeded edit stream: grow to a few vertices first, then mix edge
   adds (biased), removals of present edges, and late vertex adds —
   the same shape as the differential gate in test_session.ml. *)
let random_stream rng =
  let nv = ref 0 in
  let present = Hashtbl.create 64 in
  let pick_pair () =
    let u = Random.State.int rng !nv and v = Random.State.int rng !nv in
    if u = v then None else Some (min u v, max u v)
  in
  let rec gen k acc =
    if k = 0 then List.rev acc
    else if !nv < 4 then begin
      incr nv;
      gen (k - 1) (Session.Add_vertex :: acc)
    end
    else
      let roll = Random.State.int rng 100 in
      if roll < 10 && !nv < !vertices then begin
        incr nv;
        gen (k - 1) (Session.Add_vertex :: acc)
      end
      else if roll < 70 then
        match pick_pair () with
        | Some (u, v) ->
          Hashtbl.replace present (u, v) ();
          gen (k - 1) (Session.Add_edge (u, v) :: acc)
        | None -> gen k acc
      else
        let live = Hashtbl.fold (fun e () l -> e :: l) present [] in
        match live with
        | [] -> gen k acc
        | _ ->
          let e = List.nth live (Random.State.int rng (List.length live)) in
          Hashtbl.remove present e;
          let u, v = e in
          gen (k - 1) (Session.Remove_edge (u, v) :: acc)
  in
  gen !edits []

type sample = {
  s_warm_ms : float;
  s_cold_ms : float;
  s_warm_conflicts : int;
  s_cold_conflicts : int;
  s_incremental : bool;
}

let apply_ok sess ed =
  match Session.apply sess ed with
  | Ok () -> ()
  | Error e -> die "edit rejected: %s" e

let query_ok label sess =
  match Session.query sess with
  | Ok a ->
    if not a.Session.certified then die "%s: uncertified answer" label;
    if not a.Session.core_ok then die "%s: stale failed core" label;
    a
  | Error e -> die "%s: query failed: %s" label e

(* cold re-solve of the same state: fresh session + replay + one query,
   timed end to end — that is what a non-incremental caller pays *)
let cold_solve prefix =
  let t0 = Mclock.now () in
  let fresh = Session.create (cap ()) in
  List.iter (apply_ok fresh) prefix;
  let a = query_ok "cold" fresh in
  let dt = (Mclock.now () -. t0) *. 1000.0 in
  (a, dt)

let run_stream gi =
  let rng = Random.State.make [| !seed; gi |] in
  let stream = random_stream rng in
  let sess = Session.create (cap ()) in
  let applied = ref [] in
  let samples = ref [] in
  let take_sample () =
    let t0 = Mclock.now () in
    let warm = query_ok "warm" sess in
    let warm_ms = (Mclock.now () -. t0) *. 1000.0 in
    let cold, cold_ms = cold_solve (List.rev !applied) in
    if warm.Session.chi <> cold.Session.chi then
      die "stream %d: warm chi %d <> cold chi %d after %d edits" gi
        warm.Session.chi cold.Session.chi (List.length !applied);
    samples :=
      {
        s_warm_ms = warm_ms;
        s_cold_ms = cold_ms;
        s_warm_conflicts = warm.Session.conflicts;
        s_cold_conflicts = cold.Session.conflicts;
        s_incremental = warm.Session.incremental;
      }
      :: !samples
  in
  List.iteri
    (fun i ed ->
      apply_ok sess ed;
      applied := ed :: !applied;
      if (i + 1) mod !query_every = 0 then take_sample ())
    stream;
  if List.length stream mod !query_every <> 0 then take_sample ();
  (* the whole accumulated trace must replay through the RUP checker *)
  (match Session.check_proof sess with
  | Ok _ -> ()
  | Error e -> die "stream %d: proof replay failed: %s" gi e);
  List.rev !samples

let () =
  Arg.parse args (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  if !query_every <= 0 then die "--query-every must be positive";
  Printf.printf
    "session_bench: seed %d, %d streams x %d edits, query every %d\n%!" !seed
    !graphs !edits !query_every;
  let samples =
    List.concat (List.init !graphs (fun gi -> run_stream (gi + 1)))
  in
  let n = List.length samples in
  if n = 0 then die "zero queries — nothing was measured";
  let sorted_of f =
    let a = Array.of_list (List.map f samples) in
    Array.sort compare a;
    a
  in
  let warm = sorted_of (fun s -> s.s_warm_ms) in
  let cold = sorted_of (fun s -> s.s_cold_ms) in
  let warm_conf =
    List.fold_left (fun a s -> a + s.s_warm_conflicts) 0 samples
  in
  let cold_conf =
    List.fold_left (fun a s -> a + s.s_cold_conflicts) 0 samples
  in
  let incr_served =
    List.fold_left (fun a s -> a + if s.s_incremental then 1 else 0) 0 samples
  in
  let ratio =
    let pw = percentile warm 0.50 in
    if pw <= 0.0 then 0.0 else percentile cold 0.50 /. pw
  in
  Printf.printf
    "session_bench: %d queries | warm p50 %.2fms p95 %.2fms | cold p50 \
     %.2fms p95 %.2fms | cold/warm p50 %.2fx | %d/%d incremental\n%!"
    n (percentile warm 0.50) (percentile warm 0.95) (percentile cold 0.50)
    (percentile cold 0.95) ratio incr_served n;
  let mode_json name lat conflicts =
    Printf.sprintf
      "    \"%s\": {\n\
      \      \"p50_ms\": %.4f,\n\
      \      \"p95_ms\": %.4f,\n\
      \      \"p99_ms\": %.4f,\n\
      \      \"mean_ms\": %.4f,\n\
      \      \"conflicts\": %d\n\
      \    }"
      name (percentile lat 0.50) (percentile lat 0.95) (percentile lat 0.99)
      (mean lat) conflicts
  in
  let b = Buffer.create 2048 in
  Printf.bprintf b "{\n  \"schema\": \"colib-bench-session/1\",\n";
  Printf.bprintf b "  \"seed\": %d,\n" !seed;
  Printf.bprintf b "  \"streams\": %d,\n" !graphs;
  Printf.bprintf b "  \"edits_per_stream\": %d,\n" !edits;
  Printf.bprintf b "  \"query_every\": %d,\n" !query_every;
  Printf.bprintf b "  \"vertex_capacity\": %d,\n" !vertices;
  Printf.bprintf b "  \"queries\": %d,\n" n;
  Printf.bprintf b "  \"incremental_served\": %d,\n" incr_served;
  Printf.bprintf b "  \"modes\": {\n%s,\n%s\n  },\n"
    (mode_json "warm" warm warm_conf)
    (mode_json "cold" cold cold_conf);
  Printf.bprintf b "  \"cold_over_warm_p50\": %.4f\n" ratio;
  Printf.bprintf b "}\n";
  Durable.write_file_atomic ~path:!out (Buffer.contents b);
  Printf.printf "session_bench: wrote %s\n%!" !out;
  exit 0
