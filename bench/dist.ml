(* Distributed-solve scaling bench (DESIGN.md §17).

   Runs the certified cube-and-conquer driver ({!Colib_distrib.Conquer})
   over a fixed set of hard UNSAT cells — instances one color short of
   their chromatic number, so every cube must be refuted and the stitched
   tree proof must replay — at 1, 2, and 4 workers, and writes the wall
   times to BENCH_DIST.json (schema colib-bench-dist/1).

   The parent re-replays each Not_colorable tree proof through its own
   {!Conquer.replay_tree} before stamping "certified": the bench trusts
   the decision procedure no more than a client would.

   The report carries a "cores" field so the gate
   (scripts/bench_dist_gate.sh) can judge the curve in context: on a
   one-core box the 1->2->4 curve is expected to be flat (the workers
   serialize), and the gate only rejects a curve that is empty,
   uncertified, or outright degrading. *)

module Generators = Colib_graph.Generators
module Conquer = Colib_distrib.Conquer
module Mclock = Colib_clock.Mclock

let jobs_points = [ 1; 2; 4 ]

(* one color below chi: every cell is UNSAT and needs real refutation.
   myciel4/queen5_5 are the paper's named instances (fast smoke cells);
   the two G(n, 0.5) cells are the hard ones — no planted clique to
   shortcut the refutation, several seconds of genuine conflict
   analysis per jobs point. *)
let cells_spec =
  [
    ("myciel4", Generators.mycielski 4, 4);
    ("queen5_5", Generators.queens ~rows:5 ~cols:5, 4);
    ("gnp40", Generators.gnp ~n:40 ~p:0.5 ~seed:11, 7);
    ("gnp45", Generators.gnp ~n:45 ~p:0.5 ~seed:11, 7);
  ]

type run = { r_jobs : int; r_time : float; r_cubes : int; r_expiries : int }

type cell = {
  c_instance : string;
  c_k : int;
  c_verdict : string;
  c_certified : bool;
  c_runs : run list;
}

let verdict_string = function
  | Conquer.Colorable _ -> "sat"
  | Conquer.Not_colorable -> "unsat"
  | Conquer.Undecided why -> Printf.sprintf "undecided: %s" why

let bench_cell ~timeout (name, g, k) =
  let verdict = ref "unset" and certified = ref true in
  let runs =
    List.map
      (fun jobs ->
        Printf.printf "%-10s k=%d jobs=%d ... %!" name k jobs;
        let t0 = Mclock.now () in
        let d = Conquer.decide ~jobs ~timeout g ~k () in
        let dt = Mclock.now () -. t0 in
        let v = verdict_string d.Conquer.verdict in
        (* every jobs point must agree, and UNSAT must replay here too *)
        if !verdict = "unset" then verdict := v
        else if !verdict <> v then (
          certified := false;
          Printf.printf "VERDICT MISMATCH (%s vs %s) " !verdict v);
        (match d.Conquer.verdict with
        | Conquer.Not_colorable -> (
            match Conquer.replay_tree g ~k d.Conquer.proofs with
            | Ok () -> ()
            | Error e ->
                certified := false;
                Printf.printf "REPLAY FAILED (%s) " e)
        | Conquer.Colorable _ | Conquer.Undecided _ -> certified := false);
        Printf.printf "%s %.2fs (%d cubes)\n%!" v dt d.Conquer.cubes_solved;
        {
          r_jobs = jobs;
          r_time = dt;
          r_cubes = d.Conquer.cubes_solved;
          r_expiries = d.Conquer.expiries;
        })
      jobs_points
  in
  {
    c_instance = name;
    c_k = k;
    c_verdict = !verdict;
    c_certified = !certified;
    c_runs = runs;
  }

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_report ~path ~run_id cells =
  let b = Buffer.create 4096 in
  Printf.bprintf b "{\n  \"schema\": \"colib-bench-dist/1\",\n";
  Printf.bprintf b "  \"run_id\": \"%s\",\n" (json_escape run_id);
  Printf.bprintf b "  \"cores\": %d,\n" (Domain.recommended_domain_count ());
  Printf.bprintf b "  \"cells\": [\n";
  List.iteri
    (fun i c ->
      Printf.bprintf b "    {\"instance\": \"%s\", \"k\": %d, \"verdict\": \"%s\", \"certified\": %b,\n"
        (json_escape c.c_instance) c.c_k (json_escape c.c_verdict) c.c_certified;
      Printf.bprintf b "     \"workers\": [";
      List.iteri
        (fun j r ->
          Printf.bprintf b "%s{\"jobs\": %d, \"time\": %.6f, \"cubes\": %d, \"expiries\": %d}"
            (if j = 0 then "" else ", ")
            r.r_jobs r.r_time r.r_cubes r.r_expiries)
        c.c_runs;
      Printf.bprintf b "]}%s\n" (if i = List.length cells - 1 then "" else ","))
    cells;
  Printf.bprintf b "  ]\n}\n";
  (* atomic publish: a crashed run never leaves a half-written report *)
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (Buffer.contents b);
  close_out oc;
  Sys.rename tmp path

let () =
  let out = ref "BENCH_DIST.json" in
  let run_id = ref "local" in
  let timeout = ref 60.0 in
  let rec parse = function
    | [] -> ()
    | "--out" :: v :: rest ->
        out := v;
        parse rest
    | "--run-id" :: v :: rest ->
        run_id := v;
        parse rest
    | "--timeout" :: v :: rest ->
        timeout := float_of_string v;
        parse rest
    | arg :: _ ->
        Printf.eprintf
          "usage: dist [--out FILE] [--run-id ID] [--timeout SECS] (got %s)\n"
          arg;
        exit 1
  in
  parse (List.tl (Array.to_list Sys.argv));
  let cells = List.map (bench_cell ~timeout:!timeout) cells_spec in
  write_report ~path:!out ~run_id:!run_id cells;
  Printf.printf "wrote %s (%d cells, %d cores)\n" !out (List.length cells)
    (Domain.recommended_domain_count ());
  if List.exists (fun c -> not c.c_certified) cells then (
    Printf.eprintf "bench-dist: some cells failed certification\n";
    exit 1)
